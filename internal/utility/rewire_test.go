package utility

import (
	"math/rand"
	"testing"
	"testing/quick"

	"socialrec/internal/graph"
)

// These tests validate the rewiring counts the experiments feed into
// Corollary 1 (§7.1): t edge alterations must actually suffice to turn a
// zero-utility candidate into the strict maximum-utility node. If t were
// understated, the theoretical ceiling curves would be wrong (too tight).

// promoteCommonNeighbors applies the Claim 3 construction: connect x to
// u_max+1 distinct neighbors of r, adding a fresh intermediary when r has
// no spare. It returns the number of edges added.
func promoteCommonNeighbors(t *testing.T, g *graph.Graph, r, x int, umax int) int {
	t.Helper()
	added := 0
	need := umax + 1
	for _, w := range g.OutNeighbors(r) {
		if need == 0 {
			break
		}
		if w == x || g.HasEdge(x, w) {
			continue
		}
		if err := g.AddEdge(x, w); err != nil {
			t.Fatal(err)
		}
		added++
		need--
	}
	for need > 0 {
		// Manufacture fresh intermediaries.
		y := g.AddNode()
		if err := g.AddEdge(r, y); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(x, y); err != nil {
			t.Fatal(err)
		}
		added += 2
		need--
	}
	return added
}

func TestRewireCountPromotesCommonNeighbors(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		g := randomGraph(rng, n, false, 0.3)
		r := rng.Intn(n)
		if g.OutDegree(r) == 0 {
			return true // vacuous: no neighborhood to rewire into
		}
		full, err := (CommonNeighbors{}).Vector(g, r)
		if err != nil {
			return false
		}
		umax := Max(full)
		// Pick a zero-utility candidate not adjacent to r.
		x := -1
		for i, u := range full {
			if u == 0 && i != r && !g.HasEdge(r, i) {
				x = i
				break
			}
		}
		if x < 0 {
			return true // vacuous: everyone already has utility
		}
		declared := (CommonNeighbors{}).RewireCount(umax, g.OutDegree(r))
		work := g.Clone()
		added := promoteCommonNeighbors(t, work, r, x, int(umax))
		if added > declared {
			t.Logf("construction used %d edits, declared t = %d", added, declared)
			return false
		}
		after, err := (CommonNeighbors{}).Vector(work, r)
		if err != nil {
			return false
		}
		// x must now be the unique argmax.
		for i, u := range after {
			if i == x {
				continue
			}
			if u >= after[x] {
				t.Logf("promotion failed: u[%d]=%g >= u[x=%d]=%g", i, u, x, after[x])
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Error(err)
	}
}

func TestRewireCountPromotesWeightedPaths(t *testing.T) {
	// For weighted paths with small gamma, the same construction plus the
	// declared t = floor(umax)+2 budget must promote a zero-utility node.
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		g := randomGraph(rng, n, false, 0.3)
		r := rng.Intn(n)
		if g.OutDegree(r) == 0 {
			return true
		}
		wp := WeightedPaths{Gamma: 1e-6}
		full, err := wp.Vector(g, r)
		if err != nil {
			return false
		}
		umax := Max(full)
		x := -1
		for i, u := range full {
			if u == 0 && i != r && !g.HasEdge(r, i) {
				x = i
				break
			}
		}
		if x < 0 {
			return true
		}
		work := g.Clone()
		// Connect x to floor(umax)+1 neighbors of r (fresh intermediaries
		// as needed) — within the declared budget of floor(umax)+2 when r
		// has spare neighbors; the tiny gamma keeps longer paths from
		// overturning the count order.
		promoteCommonNeighbors(t, work, r, x, int(umax))
		after, err := wp.Vector(work, r)
		if err != nil {
			return false
		}
		for i, u := range after {
			if i == x {
				continue
			}
			if u >= after[x] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Error(err)
	}
}
