package utility

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"socialrec/internal/graph"
)

// kite fixture (undirected):
//
//	0-1, 0-2, 1-2, 1-3, 2-3, 3-4
func kite(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func randomGraph(rng *rand.Rand, n int, directed bool, density float64) *graph.Graph {
	var g *graph.Graph
	if directed {
		g = graph.NewDirected(n)
	} else {
		g = graph.New(n)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if rng.Float64() < density {
				if err := g.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func TestCommonNeighborsVector(t *testing.T) {
	g := kite(t)
	vec, err := CommonNeighbors{}.Vector(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// N(0) = {1,2}; candidates are 3 and 4 (1, 2 masked as existing).
	// C(3,0) = |{1,2} ∩ {1,2,4}| = 2; C(4,0) = |{3} ∩ {1,2}| = 0.
	want := []float64{0, 0, 0, 2, 0}
	for i := range want {
		if vec[i] != want[i] {
			t.Errorf("vec[%d] = %g, want %g", i, vec[i], want[i])
		}
	}
}

func TestCommonNeighborsVectorOnCSR(t *testing.T) {
	g := kite(t)
	gv, err := CommonNeighbors{}.Vector(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := CommonNeighbors{}.Vector(g.Snapshot(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gv {
		if gv[i] != cv[i] {
			t.Errorf("graph vs CSR mismatch at %d: %g vs %g", i, gv[i], cv[i])
		}
	}
}

func TestCommonNeighborsTargetOutOfRange(t *testing.T) {
	g := kite(t)
	if _, err := (CommonNeighbors{}).Vector(g, 17); !errors.Is(err, ErrTarget) {
		t.Errorf("want ErrTarget, got %v", err)
	}
	if _, err := (CommonNeighbors{}).Vector(g, -1); !errors.Is(err, ErrTarget) {
		t.Errorf("want ErrTarget, got %v", err)
	}
}

func TestCommonNeighborsSensitivity(t *testing.T) {
	if got := (CommonNeighbors{}).Sensitivity(kite(t)); got != 2 {
		t.Errorf("sensitivity = %g, want 2", got)
	}
}

func TestCommonNeighborsRewireCount(t *testing.T) {
	cn := CommonNeighbors{}
	// §7.1: t = umax + 1 + I(umax == dr).
	if got := cn.RewireCount(3, 10); got != 4 {
		t.Errorf("t = %d, want 4", got)
	}
	if got := cn.RewireCount(10, 10); got != 12 {
		t.Errorf("t(umax==dr) = %d, want 12", got)
	}
	if got := cn.RewireCount(0, 5); got != 1 {
		t.Errorf("t(umax=0) = %d, want 1", got)
	}
}

func TestWeightedPathsReducesToCommonNeighborsAsGammaVanishes(t *testing.T) {
	g := kite(t)
	wp := WeightedPaths{Gamma: 1e-12}
	cn := CommonNeighbors{}
	for r := 0; r < g.NumNodes(); r++ {
		wv, err := wp.Vector(g, r)
		if err != nil {
			t.Fatal(err)
		}
		cv, err := cn.Vector(g, r)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wv {
			if math.Abs(wv[i]-cv[i]) > 1e-6 {
				t.Errorf("r=%d i=%d: weighted %g vs common %g", r, i, wv[i], cv[i])
			}
		}
	}
}

func TestWeightedPathsCountsLength3(t *testing.T) {
	// Path 0-1-2-3: from r=0, candidate 3 has zero common neighbors but one
	// length-3 path, so utility γ.
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	const gamma = 0.05
	vec, err := WeightedPaths{Gamma: gamma}.Vector(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vec[3]-gamma) > 1e-15 {
		t.Errorf("vec[3] = %g, want %g", vec[3], gamma)
	}
	// Candidate 2: one length-2 path (0-1-2) -> utility 1.
	if math.Abs(vec[2]-1) > 1e-15 {
		t.Errorf("vec[2] = %g, want 1", vec[2])
	}
}

func TestWeightedPathsValidation(t *testing.T) {
	g := kite(t)
	if _, err := (WeightedPaths{Gamma: 0}).Vector(g, 0); err == nil {
		t.Error("gamma=0 accepted")
	}
	if _, err := (WeightedPaths{Gamma: 1.5}).Vector(g, 0); err == nil {
		t.Error("gamma>1 accepted")
	}
	if _, err := (WeightedPaths{Gamma: 0.5, MaxLen: 1}).Vector(g, 0); err == nil {
		t.Error("maxLen=1 accepted")
	}
	if _, err := (WeightedPaths{Gamma: 0.5}).Vector(g, 99); !errors.Is(err, ErrTarget) {
		t.Error("want ErrTarget")
	}
}

func TestWeightedPathsSensitivityGrowsWithGamma(t *testing.T) {
	g := kite(t)
	s1 := WeightedPaths{Gamma: 0.0005}.Sensitivity(g)
	s2 := WeightedPaths{Gamma: 0.05}.Sensitivity(g)
	if !(s2 > s1) {
		t.Errorf("sensitivity should grow with gamma: %g vs %g", s1, s2)
	}
	if s1 < 2 {
		t.Errorf("sensitivity %g below the common-neighbors floor 2", s1)
	}
}

func TestWeightedPathsRewireCount(t *testing.T) {
	wp := WeightedPaths{Gamma: 0.05}
	// §7.1: t = floor(umax) + 2.
	if got := wp.RewireCount(3.7, 10); got != 5 {
		t.Errorf("t = %d, want 5", got)
	}
	if got := wp.RewireCount(0.2, 10); got != 2 {
		t.Errorf("t = %d, want 2", got)
	}
}

func TestWeightedPathsName(t *testing.T) {
	if got := (WeightedPaths{Gamma: 0.05}).Name(); got != "weighted-paths(gamma=0.05,len<=3)" {
		t.Errorf("Name = %q", got)
	}
}

func TestDegreeVector(t *testing.T) {
	g := kite(t)
	vec, err := Degree{}.Vector(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// N(4) = {3}; candidates 0,1,2 with degrees 2,3,3; node 3 masked.
	want := []float64{2, 3, 3, 0, 0}
	for i := range want {
		if vec[i] != want[i] {
			t.Errorf("vec[%d] = %g, want %g", i, vec[i], want[i])
		}
	}
	if got := (Degree{}).Sensitivity(g); got != 2 {
		t.Errorf("sensitivity = %g", got)
	}
	if got := (Degree{}).RewireCount(5, 3); got != 6 {
		t.Errorf("t = %d", got)
	}
	if _, err := (Degree{}).Vector(g, -2); !errors.Is(err, ErrTarget) {
		t.Error("want ErrTarget")
	}
}

func TestPageRankVectorBasics(t *testing.T) {
	g := kite(t)
	pr := PageRank{}
	vec, err := pr.Vector(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Mass should be positive for reachable non-neighbors and zero for the
	// target and its neighbor.
	if vec[4] != 0 || vec[3] != 0 {
		t.Errorf("masked entries non-zero: %v", vec)
	}
	for _, i := range []int{0, 1, 2} {
		if vec[i] <= 0 {
			t.Errorf("vec[%d] = %g, want positive", i, vec[i])
		}
	}
	// Nodes 1 and 2 are symmetric from node 4's perspective.
	if math.Abs(vec[1]-vec[2]) > 1e-9 {
		t.Errorf("symmetric nodes differ: %g vs %g", vec[1], vec[2])
	}
}

func TestPageRankDanglingMassRestartsAtRoot(t *testing.T) {
	// Directed chain 0 -> 1 -> 2 where 2 dangles.
	g := graph.NewDirected(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	vec, err := PageRank{}.Vector(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 (two hops away) must carry positive mass; node 1 is masked.
	if vec[2] <= 0 {
		t.Errorf("vec[2] = %g", vec[2])
	}
	if vec[1] != 0 {
		t.Errorf("vec[1] = %g, want masked 0", vec[1])
	}
}

func TestPageRankValidation(t *testing.T) {
	g := kite(t)
	if _, err := (PageRank{Alpha: 1.5}).Vector(g, 0); err == nil {
		t.Error("alpha>1 accepted")
	}
	if _, err := (PageRank{}).Vector(g, 9); !errors.Is(err, ErrTarget) {
		t.Error("want ErrTarget")
	}
	if got := (PageRank{Alpha: 0.2}).Sensitivity(g); math.Abs(got-8) > 1e-12 {
		t.Errorf("sensitivity = %g, want 2(1-0.2)/0.2 = 8", got)
	}
	if got := (PageRank{}).RewireCount(0.5, 3); got != 8 {
		t.Errorf("t = %d, want 2*(3+1)", got)
	}
}

func TestMaxAndAllZero(t *testing.T) {
	if Max(nil) != 0 || Max([]float64{0, 0}) != 0 {
		t.Error("Max of zeros should be 0")
	}
	if Max([]float64{1, 5, 2}) != 5 {
		t.Error("Max wrong")
	}
	if !AllZero([]float64{0, 0}) || AllZero([]float64{0, 1}) {
		t.Error("AllZero wrong")
	}
}

// TestExchangeabilityAxiom verifies Axiom 1 for every utility function: for
// a random isomorphism h fixing the target, u_{h(i)} on h(G) equals u_i on G.
func TestExchangeabilityAxiom(t *testing.T) {
	funcs := []Function{
		CommonNeighbors{},
		WeightedPaths{Gamma: 0.05},
		Degree{},
		PageRank{Iterations: 80},
	}
	for _, f := range funcs {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			err := quick.Check(func(seed int64, directedFlag bool) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 4 + rng.Intn(8)
				g := randomGraph(rng, n, directedFlag, 0.4)
				r := rng.Intn(n)
				// Random permutation fixing r.
				perm := rng.Perm(n)
				// Swap so that perm[r] == r.
				for i, p := range perm {
					if p == r {
						perm[i], perm[r] = perm[r], perm[i]
						break
					}
				}
				h, err := g.Relabel(perm)
				if err != nil {
					return false
				}
				ug, err := f.Vector(g, r)
				if err != nil {
					return false
				}
				uh, err := f.Vector(h, r)
				if err != nil {
					return false
				}
				for i := range ug {
					if math.Abs(ug[i]-uh[perm[i]]) > 1e-9 {
						return false
					}
				}
				return true
			}, &quick.Config{MaxCount: 40})
			if err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSensitivityBoundsEmpirical verifies on random graphs that flipping one
// edge away from the target never changes the utility vector by more than
// the declared Δf in L1, nor any single entry by more than Δf/2.
func TestSensitivityBoundsEmpirical(t *testing.T) {
	funcs := []Function{
		CommonNeighbors{},
		WeightedPaths{Gamma: 0.05},
		Degree{},
	}
	for _, f := range funcs {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			err := quick.Check(func(seed int64, directedFlag bool) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 4 + rng.Intn(8)
				g := randomGraph(rng, n, directedFlag, 0.4)
				r := rng.Intn(n)
				sens := f.Sensitivity(g)
				before, err := f.Vector(g, r)
				if err != nil {
					return false
				}
				// Flip a random edge not incident to r (the relaxed privacy
				// variant of §3.2).
				u := rng.Intn(n)
				v := rng.Intn(n)
				if u == v || u == r || v == r {
					return true // vacuous draw
				}
				if g.HasEdge(u, v) {
					g.RemoveEdge(u, v)
				} else {
					g.AddEdge(u, v)
				}
				// Sensitivity is declared against the original graph's
				// dmax; adding an edge can only grow dmax by one, which the
				// weighted-paths bound absorbs at these sizes.
				after, err := f.Vector(g, r)
				if err != nil {
					return false
				}
				var l1 float64
				for i := range before {
					d := math.Abs(after[i] - before[i])
					if d > sens/2+1e-9 {
						return false
					}
					l1 += d
				}
				return l1 <= sens+1e-9
			}, &quick.Config{MaxCount: 60})
			if err != nil {
				t.Error(err)
			}
		})
	}
}
