// Package wal implements the write-ahead log that makes live graph
// mutations crash-safe. Every accepted mutation is appended as a
// length-prefixed, CRC32-checksummed record to a segmented on-disk log
// before the caller acknowledges it; after a crash, replaying the log onto
// the last persisted snapshot reconstructs every acknowledged mutation.
//
// # Format
//
// A log is a directory of segment files named by the LSN (1-based log
// sequence number) of their first record, "%016x.wal". Records never span
// segments. Each record is framed as
//
//	[4 bytes LE] payload length
//	[4 bytes LE] CRC-32 (IEEE) of the payload
//	[payload]    1 byte op, then From and To as signed varints
//
// Payloads are 3..32 bytes; a frame whose length field falls outside that
// range is corruption by definition, which is what stops replay cold on
// zero-filled tails (length 0) without trusting any file contents.
//
// # Durability
//
// SyncAlways fsyncs after every append, so a record is durable before the
// mutation is acknowledged — the strongest contract, and the default.
// SyncInterval acknowledges from the OS page cache and fsyncs in the
// background every Interval: a machine-level crash can lose up to one
// interval of acknowledged mutations (a process-level crash loses
// nothing). SyncOff never fsyncs explicitly. See the socialrec doc.go
// "Durability & failure model" section for the trade-off discussion.
//
// # Recovery
//
// Open replays every segment in LSN order and tolerates exactly the
// damage a crash can inflict: a torn or truncated tail record. Replay
// stops at the first bad frame (bad length, short payload, checksum
// mismatch); nothing after it is ever replayed, because record boundaries
// downstream of a bad frame cannot be trusted. The log is then truncated
// at the last good record so subsequent appends extend a clean tail.
//
// Failpoints (internal/fault): "wal.append" (error before the write),
// "wal.write" (partial frame write), "wal.sync" (fsync failure) let tests
// drive every failure path.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"socialrec/internal/fault"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every append returns: no acknowledged
	// mutation is ever lost, even to a kernel panic or power cut.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs in the background every Options.Interval: a
	// process crash (kill -9) loses nothing — the records are in the OS
	// page cache — but an OS-level crash can lose up to one interval of
	// acknowledged mutations.
	SyncInterval
	// SyncOff never fsyncs explicitly; durability rides on the OS
	// writeback cadence. For tests and bulk loads.
	SyncOff
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Options configures a WAL.
type Options struct {
	// SegmentBytes is the rotation threshold; a segment that would exceed
	// it is sealed and a new one started. Default 4 MiB.
	SegmentBytes int64
	// Policy is the fsync policy; default SyncAlways.
	Policy SyncPolicy
	// Interval is the background fsync cadence under SyncInterval;
	// default 50ms.
	Interval time.Duration
}

// Record is one journaled graph mutation. Op is opaque to the WAL; the
// graph layer maps it to add-edge/remove-edge/add-node.
type Record struct {
	Op       uint8
	From, To int64
}

// Stats is a point-in-time snapshot of the log, for /healthz.
type Stats struct {
	// LastLSN is the LSN of the newest record (0 when empty).
	LastLSN uint64 `json:"last_lsn"`
	// Segments is the number of live segment files.
	Segments int `json:"segments"`
	// TruncatedSegments counts segment files deleted by TruncateTo.
	TruncatedSegments uint64 `json:"truncated_segments"`
	// Policy is the fsync policy's string form.
	Policy string `json:"fsync"`
}

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

const (
	frameHeaderSize = 8
	minPayload      = 3
	maxPayload      = 32
	segmentSuffix   = ".wal"

	defaultSegmentBytes = 4 << 20
	defaultInterval     = 50 * time.Millisecond
)

// segment is one live log file; firstLSN orders them and names the file.
type segment struct {
	firstLSN uint64
	path     string
}

// WAL is a segmented write-ahead log. Safe for concurrent use; appends
// are serialized internally.
type WAL struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File // active segment, positioned at the clean tail
	size      int64    // bytes in the active segment
	sealed    []segment
	activeSeg segment
	nextLSN   uint64
	dirty     bool // unsynced appends (SyncInterval bookkeeping)
	closed    bool
	truncated uint64

	stopSync chan struct{}
	doneSync chan struct{}
}

func segmentPath(dir string, firstLSN uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x%s", firstLSN, segmentSuffix))
}

// encodeRecord frames r into buf and returns the frame.
func encodeRecord(r Record, buf []byte) []byte {
	payload := buf[frameHeaderSize:frameHeaderSize]
	payload = append(payload, r.Op)
	payload = binary.AppendVarint(payload, r.From)
	payload = binary.AppendVarint(payload, r.To)
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	return buf[:frameHeaderSize+len(payload)]
}

// decodeRecord parses one payload; ok is false on any malformation.
func decodeRecord(payload []byte) (Record, bool) {
	if len(payload) < minPayload {
		return Record{}, false
	}
	r := Record{Op: payload[0]}
	rest := payload[1:]
	var n int
	if r.From, n = binary.Varint(rest); n <= 0 {
		return Record{}, false
	}
	rest = rest[n:]
	if r.To, n = binary.Varint(rest); n <= 0 {
		return Record{}, false
	}
	if len(rest) != n {
		return Record{}, false // trailing garbage inside a framed payload
	}
	return r, true
}

// readSegment replays one segment's records, returning them along with
// the byte offset of the clean prefix and whether the segment ended
// cleanly (false when a bad frame stopped the scan early).
func readSegment(r io.Reader) (recs []Record, cleanLen int64, clean bool) {
	var header [frameHeaderSize]byte
	var payload [maxPayload]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			// EOF at a frame boundary is the clean end; anything else
			// (short header) is a torn tail.
			return recs, cleanLen, err == io.EOF
		}
		length := binary.LittleEndian.Uint32(header[0:])
		wantCRC := binary.LittleEndian.Uint32(header[4:])
		if length < minPayload || length > maxPayload {
			return recs, cleanLen, false
		}
		p := payload[:length]
		if _, err := io.ReadFull(r, p); err != nil {
			return recs, cleanLen, false
		}
		if crc32.ChecksumIEEE(p) != wantCRC {
			return recs, cleanLen, false
		}
		rec, ok := decodeRecord(p)
		if !ok {
			return recs, cleanLen, false
		}
		recs = append(recs, rec)
		cleanLen += frameHeaderSize + int64(length)
	}
}

// Open opens (creating if necessary) the log in dir, replays every intact
// record in LSN order, and returns them. Recovery truncates the log at
// the first bad frame — a crash's torn tail — so appends resume on a
// clean boundary; segments after a corrupt one are deleted, never
// replayed past the damage.
func Open(dir string, opts Options) (*WAL, []Record, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}

	w := &WAL{dir: dir, opts: opts, nextLSN: 1}
	if len(segs) > 0 {
		// TruncateTo removes prefixes, so a healthy log starts at the first
		// surviving segment's LSN, not necessarily 1.
		w.nextLSN = segs[0].firstLSN
	}
	var records []Record
	damagedAt := -1 // index of the first segment with a bad frame
	for i, seg := range segs {
		if seg.firstLSN != w.nextLSN {
			// A gap or overlap in LSNs: everything from here on is
			// untrustworthy (TruncateTo only ever removes prefixes, so a
			// healthy log is contiguous).
			damagedAt = i
			break
		}
		f, err := os.Open(seg.path)
		if err != nil {
			return nil, nil, err
		}
		recs, cleanLen, clean := readSegment(f)
		f.Close()
		records = append(records, recs...)
		w.nextLSN += uint64(len(recs))
		if !clean {
			damagedAt = i
			if err := os.Truncate(seg.path, cleanLen); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
			}
			break
		}
	}
	switch {
	case damagedAt >= 0:
		// The damaged segment becomes the active tail; later segments are
		// unrecoverable (their records were never acknowledged as durable
		// in any run whose tail survived) and are removed.
		for _, seg := range segs[damagedAt+1:] {
			if err := os.Remove(seg.path); err != nil {
				return nil, nil, err
			}
		}
		w.sealed = append(w.sealed, segs[:damagedAt]...)
		w.activeSeg = segs[damagedAt]
	case len(segs) > 0:
		w.sealed = append(w.sealed, segs[:len(segs)-1]...)
		w.activeSeg = segs[len(segs)-1]
	default:
		w.activeSeg = segment{firstLSN: 1, path: segmentPath(dir, 1)}
	}

	f, err := os.OpenFile(w.activeSeg.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	w.f = f
	w.size = size

	if opts.Policy == SyncInterval {
		w.stopSync = make(chan struct{})
		w.doneSync = make(chan struct{})
		go w.syncLoop()
	}
	return w, records, nil
}

// listSegments returns dir's segment files sorted by first LSN.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		lsn, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 16, 64)
		if err != nil || lsn == 0 {
			continue // foreign file; leave it alone
		}
		segs = append(segs, segment{firstLSN: lsn, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

// Append journals one record. When it returns nil the record is durable
// per the sync policy (on disk under SyncAlways, in the page cache
// otherwise) — only then may the mutation be acknowledged. On error the
// log is rolled back to its pre-append state, so a failed append never
// leaves a torn frame for recovery to trip on.
func (w *WAL) Append(r Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if err := fault.Inject("wal.append"); err != nil {
		return 0, err
	}
	var buf [frameHeaderSize + maxPayload]byte
	frame := encodeRecord(r, buf[:])

	if w.size > 0 && w.size+int64(len(frame)) > w.opts.SegmentBytes {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	if _, err := fault.Writer("wal.write", w.f).Write(frame); err != nil {
		// Roll the torn frame back so the next append starts clean. If
		// the disk refuses even that, recovery's torn-tail handling still
		// drops the partial frame on restart.
		if terr := w.f.Truncate(w.size); terr == nil {
			if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
				w.closeLocked()
			}
		} else {
			w.closeLocked()
		}
		return 0, err
	}
	if w.opts.Policy == SyncAlways {
		if err := w.syncLocked(); err != nil {
			// The bytes may be in the page cache but the durability
			// contract is broken; roll back so an unacknowledged record
			// cannot survive into a replay.
			if terr := w.f.Truncate(w.size); terr == nil {
				if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
					w.closeLocked()
				}
			} else {
				w.closeLocked()
			}
			return 0, err
		}
	} else {
		w.dirty = true
	}
	w.size += int64(len(frame))
	lsn := w.nextLSN
	w.nextLSN++
	return lsn, nil
}

// rotate seals the active segment and starts a new one first-named by the
// next LSN.
func (w *WAL) rotate() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	seg := segment{firstLSN: w.nextLSN, path: segmentPath(w.dir, w.nextLSN)}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		// Reopen the sealed segment so the WAL stays usable.
		if old, oerr := os.OpenFile(w.activeSeg.path, os.O_RDWR, 0o644); oerr == nil {
			if _, serr := old.Seek(0, io.SeekEnd); serr == nil {
				w.f = old
				return err
			}
			old.Close()
		}
		w.closed = true
		return err
	}
	w.sealed = append(w.sealed, w.activeSeg)
	w.activeSeg = seg
	w.f = f
	w.size = 0
	return nil
}

func (w *WAL) syncLocked() error {
	if err := fault.Inject("wal.sync"); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

// Sync forces an fsync of the active segment.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.syncLocked()
}

// syncLoop is the SyncInterval background fsync.
func (w *WAL) syncLoop() {
	defer close(w.doneSync)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stopSync:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed && w.dirty {
				_ = w.syncLocked() // retried next tick; Close syncs once more
			}
			w.mu.Unlock()
		}
	}
}

// TruncateTo deletes sealed segments every record of which has LSN <=
// lsn — called once a snapshot covering those records has been durably
// persisted, so the log only retains mutations newer than the newest
// snapshot. The active segment is never deleted. Deleting is prefix-only:
// the first retained segment stops the scan, keeping the log contiguous.
func (w *WAL) TruncateTo(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	keep := 0
	for i, seg := range w.sealed {
		var lastLSN uint64
		if i+1 < len(w.sealed) {
			lastLSN = w.sealed[i+1].firstLSN - 1
		} else {
			lastLSN = w.activeSeg.firstLSN - 1
		}
		if lastLSN > lsn {
			break
		}
		if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
			w.sealed = w.sealed[keep:]
			return err
		}
		w.truncated++
		keep = i + 1
	}
	w.sealed = w.sealed[keep:]
	return nil
}

// LastLSN returns the LSN of the newest appended record (0 when the log
// has never held one).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// Stats returns a point-in-time snapshot of the log's gauges.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		LastLSN:           w.nextLSN - 1,
		Segments:          len(w.sealed) + 1,
		TruncatedSegments: w.truncated,
		Policy:            w.opts.Policy.String(),
	}
}

// closeLocked tears down the file handle after an unrecoverable write
// error; subsequent operations return ErrClosed.
func (w *WAL) closeLocked() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	w.closed = true
}

// Close syncs and closes the log. Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	stop := w.stopSync
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.doneSync
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	w.closed = true
	return err
}
