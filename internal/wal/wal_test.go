package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"socialrec/internal/fault"
)

func openT(t *testing.T, dir string, opts Options) (*WAL, []Record) {
	t.Helper()
	w, recs, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return w, recs
}

func appendN(t *testing.T, w *WAL, recs []Record) {
	t.Helper()
	for i, r := range recs {
		if _, err := w.Append(r); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func someRecords(n int) []Record {
	rng := rand.New(rand.NewSource(7))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Op: uint8(rng.Intn(3)), From: rng.Int63n(1 << 40), To: -rng.Int63n(1 << 40)}
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := someRecords(100)
	w, replayed := openT(t, dir, Options{Policy: SyncOff})
	if len(replayed) != 0 {
		t.Fatalf("fresh log replayed %d records", len(replayed))
	}
	appendN(t, w, want)
	if got := w.LastLSN(); got != 100 {
		t.Fatalf("LastLSN = %d, want 100", got)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, got := openT(t, dir, Options{Policy: SyncOff})
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got := w2.LastLSN(); got != 100 {
		t.Fatalf("reopened LastLSN = %d, want 100", got)
	}
}

func TestReplayWithoutCleanClose(t *testing.T) {
	dir := t.TempDir()
	want := someRecords(25)
	w, _ := openT(t, dir, Options{Policy: SyncAlways})
	appendN(t, w, want)
	// Simulate kill -9: no Close. The handle stays open (the OS keeps the
	// bytes); just reopen the directory.
	w2, got := openT(t, dir, Options{Policy: SyncAlways})
	defer w2.Close()
	defer w.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records after unclean shutdown, want %d", len(got), len(want))
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	w, _ := openT(t, dir, Options{Policy: SyncOff, SegmentBytes: 64})
	want := someRecords(40)
	appendN(t, w, want)
	st := w.Stats()
	if st.Segments < 4 {
		t.Fatalf("Segments = %d, want several with 64-byte segments", st.Segments)
	}

	// Truncating to the mid-log LSN must drop a prefix of sealed segments
	// but keep every record past the truncation point replayable.
	if err := w.TruncateTo(20); err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}
	st2 := w.Stats()
	if st2.TruncatedSegments == 0 {
		t.Fatal("TruncateTo deleted no segments")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, got := openT(t, dir, Options{Policy: SyncOff})
	defer w2.Close()
	// The first replayed record's position within the original sequence:
	// all of 21..40 must be present as a suffix.
	if len(got) < 20 {
		t.Fatalf("replayed %d records, want >= 20 surviving", len(got))
	}
	tail := want[len(want)-len(got):]
	for i := range tail {
		if got[i] != tail[i] {
			t.Fatalf("surviving record %d = %+v, want %+v", i, got[i], tail[i])
		}
	}
	if lsn := w2.LastLSN(); lsn != 40 {
		t.Fatalf("LastLSN after truncated reopen = %d, want 40", lsn)
	}
}

func TestTruncateToNeverTouchesActiveSegment(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{Policy: SyncOff})
	appendN(t, w, someRecords(10))
	if err := w.TruncateTo(10); err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}
	if st := w.Stats(); st.Segments != 1 || st.TruncatedSegments != 0 {
		t.Fatalf("Stats = %+v; the lone active segment must survive", st)
	}
	w.Close()
	w2, got := openT(t, dir, Options{Policy: SyncOff})
	defer w2.Close()
	if len(got) != 10 {
		t.Fatalf("replayed %d, want 10", len(got))
	}
}

func TestTornTailIsDroppedAndAppendsResume(t *testing.T) {
	for cut := 1; cut < 12; cut++ {
		dir := t.TempDir()
		want := someRecords(8)
		w, _ := openT(t, dir, Options{Policy: SyncOff})
		appendN(t, w, want)
		w.Close()

		// Tear the tail: chop `cut` bytes off the last record.
		segs, err := listSegments(dir)
		if err != nil || len(segs) != 1 {
			t.Fatalf("listSegments: %v (%d segs)", err, len(segs))
		}
		fi, _ := os.Stat(segs[0].path)
		if err := os.Truncate(segs[0].path, fi.Size()-int64(cut)); err != nil {
			t.Fatal(err)
		}

		w2, got := openT(t, dir, Options{Policy: SyncOff})
		if len(got) != len(want)-1 {
			t.Fatalf("cut=%d: replayed %d records, want %d (torn final record dropped)", cut, len(got), len(want)-1)
		}
		// Appends must resume on the clean boundary and survive reopen.
		extra := Record{Op: 2, From: 123, To: 456}
		if _, err := w2.Append(extra); err != nil {
			t.Fatalf("cut=%d: append after torn-tail recovery: %v", cut, err)
		}
		w2.Close()
		w3, got3 := openT(t, dir, Options{Policy: SyncOff})
		w3.Close()
		if len(got3) != len(want) || got3[len(got3)-1] != extra {
			t.Fatalf("cut=%d: after recovery+append, replayed %d records tail %+v", cut, len(got3), got3[len(got3)-1])
		}
	}
}

func TestCorruptMiddleStopsReplayAtFirstBadChecksum(t *testing.T) {
	dir := t.TempDir()
	want := someRecords(20)
	w, _ := openT(t, dir, Options{Policy: SyncOff})
	appendN(t, w, want)
	w.Close()

	segs, _ := listSegments(dir)
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle of the file.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, got := openT(t, dir, Options{Policy: SyncOff})
	defer w2.Close()
	if len(got) >= len(want) {
		t.Fatalf("replayed %d records past a mid-log corruption", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v (prefix before the damage must be intact)", i, got[i], want[i])
		}
	}
}

func TestCorruptSealedSegmentDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{Policy: SyncOff, SegmentBytes: 64})
	want := someRecords(40)
	appendN(t, w, want)
	if st := w.Stats(); st.Segments < 3 {
		t.Fatalf("want >= 3 segments, got %d", st.Segments)
	}
	w.Close()

	segs, _ := listSegments(dir)
	// Corrupt the second segment's first record header.
	data, _ := os.ReadFile(segs[1].path)
	data[0] ^= 0xff
	if err := os.WriteFile(segs[1].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, got := openT(t, dir, Options{Policy: SyncOff, SegmentBytes: 64})
	defer w2.Close()
	// Replay must cover exactly segment 1's records and nothing after the
	// corrupted frame.
	after, _ := listSegments(dir)
	if len(after) != 2 {
		t.Fatalf("%d segments survive, want 2 (prefix + damaged tail)", len(after))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch after corruption", i)
		}
	}
	if len(got) >= len(want) {
		t.Fatalf("replayed %d of %d records despite corruption", len(got), len(want))
	}
}

func TestAppendFailpointRollsBack(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{Policy: SyncOff})
	if _, err := w.Append(Record{Op: 1, From: 1, To: 2}); err != nil {
		t.Fatal(err)
	}

	fault.Arm("wal.write", fault.Config{Mode: fault.PartialWrite, Limit: 5, Count: 1})
	if _, err := w.Append(Record{Op: 1, From: 3, To: 4}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("partial-write append = %v, want injected error", err)
	}
	// The torn frame was rolled back: the next append lands cleanly.
	if _, err := w.Append(Record{Op: 1, From: 5, To: 6}); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	w.Close()

	w2, got := openT(t, dir, Options{Policy: SyncOff})
	defer w2.Close()
	wantRecs := []Record{{Op: 1, From: 1, To: 2}, {Op: 1, From: 5, To: 6}}
	if len(got) != len(wantRecs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(wantRecs))
	}
	for i := range wantRecs {
		if got[i] != wantRecs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], wantRecs[i])
		}
	}
}

func TestSyncFailpointFailsAppendWithoutGhostRecord(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{Policy: SyncAlways})
	if _, err := w.Append(Record{Op: 1, From: 1, To: 2}); err != nil {
		t.Fatal(err)
	}
	fault.Arm("wal.sync", fault.Config{Mode: fault.Error, Count: 1})
	if _, err := w.Append(Record{Op: 1, From: 9, To: 9}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append under sync failure = %v, want injected error", err)
	}
	if _, err := w.Append(Record{Op: 1, From: 3, To: 4}); err != nil {
		t.Fatalf("append after sync recovery: %v", err)
	}
	w.Close()
	w2, got := openT(t, dir, Options{Policy: SyncAlways})
	defer w2.Close()
	for _, r := range got {
		if r.From == 9 {
			t.Fatal("unacknowledged record (failed fsync) survived into replay")
		}
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
}

func TestAppendErrorFailpoint(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{Policy: SyncOff})
	defer w.Close()
	fault.Arm("wal.append", fault.Config{Mode: fault.Error, Count: 1})
	if _, err := w.Append(Record{Op: 1}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Append = %v, want injected", err)
	}
	if _, err := w.Append(Record{Op: 1, From: 1, To: 2}); err != nil {
		t.Fatalf("Append after disarm-by-count: %v", err)
	}
}

func TestSyncIntervalEventuallySyncs(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{Policy: SyncInterval, Interval: 5 * time.Millisecond})
	appendN(t, w, someRecords(5))
	time.Sleep(40 * time.Millisecond)
	w.mu.Lock()
	dirty := w.dirty
	w.mu.Unlock()
	if dirty {
		t.Fatal("interval syncer left the log dirty")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestClosedOperationsReturnErrClosed(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{Policy: SyncOff})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
	if _, err := w.Append(Record{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed = %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync on closed = %v", err)
	}
	if err := w.TruncateTo(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("TruncateTo on closed = %v", err)
	}
}

func TestZeroFilledTailStopsReplay(t *testing.T) {
	dir := t.TempDir()
	want := someRecords(5)
	w, _ := openT(t, dir, Options{Policy: SyncOff})
	appendN(t, w, want)
	w.Close()
	segs, _ := listSegments(dir)
	f, err := os.OpenFile(segs[0].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A crash after metadata-only extension leaves a zero-filled tail.
	f.Write(make([]byte, 256))
	f.Close()
	w2, got := openT(t, dir, Options{Policy: SyncOff})
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records with zero-filled tail, want %d", len(got), len(want))
	}
}

// FuzzWALReplay feeds arbitrary segment bytes — seeded with valid logs,
// then mutated by the fuzzer — through recovery. Whatever the bytes,
// recovery must not panic, must never replay a record past the first bad
// checksum, and must leave the directory in a state where appends work.
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: a valid 6-record segment, a truncated one, an empty
	// file, junk, and a zero page.
	valid := func() []byte {
		var buf bytes.Buffer
		var scratch [frameHeaderSize + maxPayload]byte
		for i := 0; i < 6; i++ {
			buf.Write(encodeRecord(Record{Op: uint8(i % 3), From: int64(i * 1000), To: int64(-i)}, scratch[:]))
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte("not a wal segment at all, definitely"))
	f.Add(make([]byte, 512))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, err := Open(dir, Options{Policy: SyncOff})
		if err != nil {
			// Open only errors on real I/O failures, not corruption.
			t.Fatalf("Open on corrupt input: %v", err)
		}
		defer w.Close()

		// Every replayed record must correspond to a frame with a valid
		// checksum, and replay must have stopped at the first bad one:
		// re-scan the original bytes and compare.
		wantRecs, _, _ := readSegment(bytes.NewReader(data))
		if len(recs) != len(wantRecs) {
			t.Fatalf("replayed %d records, reference scan found %d", len(recs), len(wantRecs))
		}
		for i := range recs {
			if recs[i] != wantRecs[i] {
				t.Fatalf("record %d: %+v != %+v", i, recs[i], wantRecs[i])
			}
		}

		// The log must be usable after recovery: append + reopen round-trips.
		extra := Record{Op: 7, From: 42, To: 43}
		if _, err := w.Append(extra); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		w.Close()
		w2, recs2, err := Open(dir, Options{Policy: SyncOff})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer w2.Close()
		if len(recs2) != len(recs)+1 || recs2[len(recs2)-1] != extra {
			t.Fatalf("after recovery+append: %d records, tail %+v", len(recs2), recs2[len(recs2)-1])
		}
	})
}

// TestReadSegmentReference sanity-checks the reference scanner used by the
// fuzz target against a hand-built frame.
func TestReadSegmentReference(t *testing.T) {
	var scratch [frameHeaderSize + maxPayload]byte
	frame := encodeRecord(Record{Op: 1, From: 7, To: -7}, scratch[:])
	recs, n, clean := readSegment(bytes.NewReader(frame))
	if !clean || n != int64(len(frame)) || len(recs) != 1 || recs[0] != (Record{Op: 1, From: 7, To: -7}) {
		t.Fatalf("readSegment = (%v, %d, %v)", recs, n, clean)
	}
	// Break the CRC.
	bad := append([]byte(nil), frame...)
	bad[4] ^= 1
	recs, n, clean = readSegment(bytes.NewReader(bad))
	if clean || n != 0 || len(recs) != 0 {
		t.Fatalf("corrupt frame scanned as (%v, %d, %v)", recs, n, clean)
	}
}

// TestFrameEncodingStable pins the frame layout: length-prefix, CRC32,
// varint payload. A change here silently breaks every existing log.
func TestFrameEncodingStable(t *testing.T) {
	var scratch [frameHeaderSize + maxPayload]byte
	frame := encodeRecord(Record{Op: 2, From: 300, To: -1}, scratch[:])
	payload := frame[frameHeaderSize:]
	if binary.LittleEndian.Uint32(frame[0:]) != uint32(len(payload)) {
		t.Fatal("length prefix mismatch")
	}
	if binary.LittleEndian.Uint32(frame[4:]) != crc32.ChecksumIEEE(payload) {
		t.Fatal("crc mismatch")
	}
	if payload[0] != 2 {
		t.Fatal("op byte mismatch")
	}
	from, n := binary.Varint(payload[1:])
	if from != 300 {
		t.Fatalf("from = %d", from)
	}
	to, _ := binary.Varint(payload[1+n:])
	if to != -1 {
		t.Fatalf("to = %d", to)
	}
}

// TestForeignFilesIgnored ensures non-segment files in the WAL directory
// are left alone.
func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs := openT(t, dir, Options{Policy: SyncOff})
	defer w.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records from foreign files", len(recs))
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatalf("foreign file touched: %v", err)
	}
}
