// Package par provides the bounded worker pool shared by batch serving
// (socialrec.BatchRecommend and friends) and the experiment pipeline's
// utility-vector fan-out. Work items are indices, so callers keep results
// positionally aligned regardless of worker interleaving.
package par

import (
	"runtime"
	"sync"
)

// ForEach calls fn(0..n-1) across a worker pool bounded by
// runtime.NumCPU(). It returns once every call has completed. fn must be
// safe for concurrent invocation.
//
// Panic safety: a panic inside fn does not crash the pool's goroutines or
// deadlock the caller. The panicking worker stops, the remaining workers
// drain the remaining indices, and the first panic value is re-raised on
// the caller's goroutine once the pool is quiescent — matching the behavior
// of a plain sequential loop closely enough that callers need no special
// handling.
func ForEach(n int, fn func(i int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Pre-filling a buffered channel keeps the feed non-blocking, so a
	// panicking (hence non-consuming) worker can never wedge the feeder.
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicVal = p })
				}
			}()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// ForEachChunked partitions 0..n-1 into one contiguous half-open range per
// worker and calls fn(lo, hi) for each range. Compared with ForEach it
// trades work stealing for scheduling cost: there is one goroutine and one
// closure call per worker instead of one channel round-trip per index, and
// each worker writes a contiguous span of the caller's result slice, so it
// is the right shape for uniform per-item work like batch serving. fn must
// be safe for concurrent invocation; with one usable CPU it degenerates to
// a single fn(0, n) call on the caller's goroutine.
//
// Panic safety matches ForEach: the first panic value from any chunk is
// re-raised on the caller's goroutine once every chunk has finished.
func ForEachChunked(n int, fn func(lo, hi int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
	)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicVal = p })
				}
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// Map computes fn(0..n-1) on the ForEach pool and returns the results in
// index order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}
