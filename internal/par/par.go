// Package par provides the bounded worker pool shared by batch serving
// (socialrec.BatchRecommend and friends) and the experiment pipeline's
// utility-vector fan-out. Work items are indices, so callers keep results
// positionally aligned regardless of worker interleaving.
package par

import (
	"runtime"
	"sync"
)

// ForEach calls fn(0..n-1) across a worker pool bounded by
// runtime.NumCPU(). It returns once every call has completed. fn must be
// safe for concurrent invocation.
func ForEach(n int, fn func(i int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Map computes fn(0..n-1) on the ForEach pool and returns the results in
// index order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}
