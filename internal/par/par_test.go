package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		visits := make([]atomic.Int32, n)
		ForEach(n, func(i int) { visits[i].Add(1) })
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestMapKeepsResultsPositionallyAligned(t *testing.T) {
	n := 4 * runtime.NumCPU() * 97
	got := Map(n, func(i int) int { return i * i })
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d: workers scrambled positions", i, v, i*i)
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	for _, n := range []int{1, 64} { // sequential and pooled paths
		n := n
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("n=%d: panic swallowed", n)
				}
				if got, ok := p.(string); !ok || got != "boom" {
					t.Fatalf("n=%d: recovered %v, want \"boom\"", n, p)
				}
			}()
			ForEach(n, func(i int) {
				if i == n/2 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachSurvivesPanicWithoutLeakingWork(t *testing.T) {
	// After a panic, ForEach must still return (no deadlock) and the pool
	// must remain usable for subsequent calls.
	func() {
		defer func() { recover() }() //nolint:errcheck
		ForEach(128, func(i int) {
			if i%2 == 0 {
				panic(i)
			}
		})
	}()
	var count atomic.Int32
	ForEach(256, func(i int) { count.Add(1) })
	if got := count.Load(); got != 256 {
		t.Fatalf("post-panic ForEach ran %d of 256 items", got)
	}
}
