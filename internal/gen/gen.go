// Package gen generates the synthetic social graphs on which the paper's
// experiments are reproduced. The paper evaluates on the SNAP Wikipedia vote
// network (7,115 nodes, 100,762 undirected edges) and a never-released
// Twitter connection sample (96,403 nodes, 489,986 directed edges, max
// degree 13,181). Neither dataset is available in this offline environment,
// so WikiVoteLike and TwitterLike build graphs with matched node/edge counts
// and heavy-tailed degree distributions; DESIGN.md records the substitution.
// The package also ships the standard random-graph models (Erdős–Rényi,
// Barabási–Albert, Watts–Strogatz, power-law configuration model) used by
// tests, ablations, and examples.
package gen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"socialrec/internal/distribution"
	"socialrec/internal/graph"
)

// ErrParams is returned when a generator receives invalid parameters.
var ErrParams = errors.New("gen: invalid parameters")

// contains reports whether xs holds x; generator fan-outs are small (tens of
// entries), where a linear scan beats a map and keeps iteration
// deterministic.
func contains(xs []int, x int) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

// ErdosRenyiGNM returns an undirected G(n, m) graph: m distinct edges chosen
// uniformly at random among all node pairs.
func ErdosRenyiGNM(n, m int, rng *rand.Rand) (*graph.Graph, error) {
	maxM := n * (n - 1) / 2
	if n < 0 || m < 0 || m > maxM {
		return nil, fmt.Errorf("%w: G(n=%d, m=%d) needs 0 <= m <= %d", ErrParams, n, m, maxM)
	}
	g := graph.New(n)
	for g.NumEdges() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ErdosRenyiGNP returns an undirected G(n, p) graph where each pair is an
// edge independently with probability p.
func ErdosRenyiGNP(n int, p float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 0 || p < 0 || p > 1 {
		return nil, fmt.Errorf("%w: G(n=%d, p=%g)", ErrParams, n, p)
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// BarabasiAlbert returns an undirected preferential-attachment graph: start
// from a clique on m0 = m+1 nodes; each subsequent node attaches m edges to
// existing nodes chosen proportionally to their degree. The resulting degree
// distribution is the power law that makes most nodes low-degree — the
// regime where the paper's lower bounds bite hardest.
func BarabasiAlbert(n, m int, rng *rand.Rand) (*graph.Graph, error) {
	if m < 1 || n < m+1 {
		return nil, fmt.Errorf("%w: BarabasiAlbert(n=%d, m=%d) needs m >= 1 and n > m", ErrParams, n, m)
	}
	g := graph.New(n)
	// repeated holds one entry per edge endpoint; sampling uniformly from it
	// is sampling proportionally to degree.
	repeated := make([]int, 0, 2*m*n)
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
			repeated = append(repeated, u, v)
		}
	}
	for v := m + 1; v < n; v++ {
		attached := make([]int, 0, m)
		for len(attached) < m {
			u := repeated[rng.Intn(len(repeated))]
			if u == v || contains(attached, u) {
				continue
			}
			attached = append(attached, u)
		}
		for _, u := range attached {
			if err := g.AddEdge(v, u); err != nil {
				return nil, err
			}
			repeated = append(repeated, v, u)
		}
	}
	return g, nil
}

// WattsStrogatz returns an undirected small-world graph: a ring lattice
// where each node connects to its k nearest neighbors (k even), with each
// edge rewired to a random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 3 || k < 2 || k%2 != 0 || k >= n || beta < 0 || beta > 1 {
		return nil, fmt.Errorf("%w: WattsStrogatz(n=%d, k=%d, beta=%g)", ErrParams, n, k, beta)
	}
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			u := (v + j) % n
			if !g.HasEdge(v, u) {
				if err := g.AddEdge(v, u); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, e := range g.Edges() {
		if rng.Float64() >= beta {
			continue
		}
		// Rewire the far endpoint to a uniform random non-neighbor.
		for attempt := 0; attempt < 32; attempt++ {
			w := rng.Intn(n)
			if w == e.From || g.HasEdge(e.From, w) {
				continue
			}
			if err := g.RemoveEdge(e.From, e.To); err != nil {
				return nil, err
			}
			if err := g.AddEdge(e.From, w); err != nil {
				return nil, err
			}
			break
		}
	}
	return g, nil
}

// PowerLawConfiguration returns an undirected graph whose degree sequence is
// drawn from a Zipf law with the given exponent, scaled so that the expected
// edge count is close to targetEdges, then wired by the configuration model
// with self-loops and multi-edges dropped. minDegree floors every node's
// degree so the graph has no isolated nodes.
func PowerLawConfiguration(n, targetEdges, minDegree int, exponent float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 || targetEdges < 1 || minDegree < 0 || exponent <= 1 {
		return nil, fmt.Errorf("%w: PowerLawConfiguration(n=%d, m=%d, minDeg=%d, s=%g)", ErrParams, n, targetEdges, minDegree, exponent)
	}
	maxDeg := n - 1
	z, err := distribution.NewZipf(maxDeg, exponent)
	if err != nil {
		return nil, err
	}
	degrees := make([]int, n)
	total := 0
	for i := range degrees {
		d := z.Sample(rng)
		if d < minDegree {
			d = minDegree
		}
		degrees[i] = d
		total += d
	}
	// Scale the sequence toward 2*targetEdges stubs, capping hubs near
	// 2·sqrt(2m): above that, the expected stub-pairing multiplicity
	// d_u·d_v/(2m) between two hubs exceeds ~4 and the dropped duplicate
	// edges would hollow out the target edge count. (The real Wiki-Vote max
	// degree, 1065 on 100,762 edges, sits almost exactly at this cap.)
	want := 2 * targetEdges
	capHeavy := int(2 * math.Sqrt(float64(want)))
	if capHeavy > maxDeg {
		capHeavy = maxDeg
	}
	if capHeavy < minDegree+1 {
		capHeavy = minDegree + 1
	}
	// Binary-search one global scale factor s so that the clamped sequence
	// clamp(round(s·d), minDegree, capHeavy) sums to ~want. A single scale
	// preserves the low-degree mass of the Zipf draw (the nodes the paper's
	// trade-offs punish hardest), which iterative rescaling would drift
	// upward once the hub cap removes tail mass.
	clampedSum := func(s float64) int {
		sum := 0
		for _, d := range degrees {
			c := int(s*float64(d) + 0.5)
			if c < minDegree {
				c = minDegree
			}
			if c > capHeavy {
				c = capHeavy
			}
			sum += c
		}
		return sum
	}
	lo, hi := 0.0, 64.0
	for iter := 0; iter < 48; iter++ {
		mid := (lo + hi) / 2
		if clampedSum(mid) < want {
			lo = mid
		} else {
			hi = mid
		}
	}
	total = 0
	for i := range degrees {
		d := int(hi*float64(degrees[i]) + 0.5)
		if d < minDegree {
			d = minDegree
		}
		if d > capHeavy {
			d = capHeavy
		}
		degrees[i] = d
		total += d
	}
	if total%2 != 0 {
		degrees[rng.Intn(n)]++
		total++
	}
	stubs := make([]int, 0, total)
	for v, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	g := graph.New(n)
	// Pair stubs; self-loops and duplicate edges are collisions. Instead of
	// dropping collisions outright (which costs heavy-tailed sequences close
	// to half their edges at hubs), re-shuffle the colliding stubs and retry
	// a few rounds, then drop whatever remains.
	for round := 0; round < 8 && len(stubs) > 1; round++ {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		failed := stubs[:0]
		for i := 0; i+1 < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || g.HasEdge(u, v) || g.Degree(u) >= maxDeg || g.Degree(v) >= maxDeg {
				failed = append(failed, u, v)
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
		}
		stubs = failed
	}
	// Completion phase: the surviving stubs cluster on a few hubs that are
	// already saturated against each other, so stub-stub pairing stalls.
	// Attach each remaining stub to a uniform random non-neighbor instead —
	// a small departure from the pure configuration model that preserves the
	// heavy tail while restoring the target edge count.
	attempts := 0
	for i := 0; i < len(stubs) && g.NumEdges() < targetEdges && attempts < 40*len(stubs); i++ {
		u := stubs[i]
		v := rng.Intn(n)
		attempts++
		if u == v || g.HasEdge(u, v) || g.Degree(u) >= maxDeg || g.Degree(v) >= maxDeg {
			i-- // retry this stub with a fresh partner
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// DirectedPreferentialAttachment returns a directed graph of n nodes and
// close to targetEdges edges. Each new node emits out-edges whose count is
// drawn from a Zipf law (so out-degrees are heavy-tailed) toward targets
// chosen by in-degree-proportional preferential attachment, producing the
// few-celebrities/many-followers shape of the paper's Twitter sample.
// hubBoost extra in-stubs are granted to node 0 so a dmax-scale hub exists.
func DirectedPreferentialAttachment(n, targetEdges, hubBoost int, exponent float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 || targetEdges < 1 || exponent <= 1 || hubBoost < 0 {
		return nil, fmt.Errorf("%w: DirectedPreferentialAttachment(n=%d, m=%d)", ErrParams, n, targetEdges)
	}
	avgOut := float64(targetEdges) / float64(n)
	maxOut := n - 1
	if maxOut > 4096 {
		maxOut = 4096
	}
	z, err := distribution.NewZipf(maxOut, exponent)
	if err != nil {
		return nil, err
	}
	// Calibrate: E[Zipf] may differ from avgOut; compute a per-node repeat
	// factor by expected value.
	var ez float64
	for k := 1; k <= maxOut; k++ {
		ez += float64(k) * z.PMF(k)
	}
	scale := avgOut / ez
	g := graph.NewDirected(n)
	targets := make([]int, 0, 2*targetEdges+hubBoost)
	targets = append(targets, 0)
	for i := 0; i < hubBoost; i++ {
		targets = append(targets, 0)
	}
	for v := 1; v < n && g.NumEdges() < targetEdges; v++ {
		k := int(float64(z.Sample(rng))*scale + 0.5)
		if k < 1 {
			k = 1
		}
		if k > v {
			k = v
		}
		chosen := make([]int, 0, k)
		for len(chosen) < k {
			var u int
			if rng.Float64() < 0.2 {
				u = rng.Intn(v) // uniform mixing keeps the graph connected-ish
			} else {
				u = targets[rng.Intn(len(targets))]
			}
			if u == v || u >= v || contains(chosen, u) {
				continue
			}
			chosen = append(chosen, u)
		}
		for _, u := range chosen {
			if err := g.AddEdge(v, u); err != nil {
				return nil, err
			}
			targets = append(targets, u)
		}
		targets = append(targets, v)
	}
	return g, nil
}
