package gen

import (
	"math/rand"

	"socialrec/internal/graph"
)

// Dataset statistics reported in §7.1 of the paper. The "Like" presets below
// target these shapes; scaled-down variants keep the same density and degree
// exponent so tests and benchmarks run quickly while preserving the regime
// the figures probe (most nodes low-degree, a heavy tail of hubs).
const (
	// WikiVoteNodes and WikiVoteEdges are the size of the SNAP Wikipedia
	// vote network after conversion to an undirected graph.
	WikiVoteNodes = 7115
	WikiVoteEdges = 100762

	// TwitterNodes, TwitterEdges, and TwitterMaxDegree describe the directed
	// Twitter connection sample of Silberstein et al. used by the paper.
	TwitterNodes     = 96403
	TwitterEdges     = 489986
	TwitterMaxDegree = 13181
)

// WikiVoteLike returns an undirected graph with the Wikipedia vote network's
// node and edge counts and a heavy-tailed degree distribution (power-law
// configuration model, exponent 1.2, which reproduces the real dataset's
// skew: median degree ~2 and roughly 60% of nodes with degree <= 3 despite
// a mean degree of 28).
func WikiVoteLike(rng *rand.Rand) (*graph.Graph, error) {
	return PowerLawConfiguration(WikiVoteNodes, WikiVoteEdges, 1, 1.2, rng)
}

// WikiVoteLikeScaled returns a graph with the Wiki-Vote density and degree
// exponent at 1/scale of the size, for fast tests and benchmarks.
func WikiVoteLikeScaled(scale int, rng *rand.Rand) (*graph.Graph, error) {
	if scale < 1 {
		scale = 1
	}
	return PowerLawConfiguration(WikiVoteNodes/scale, WikiVoteEdges/scale, 1, 1.2, rng)
}

// TwitterLike returns a directed graph with the Twitter sample's node and
// edge counts, heavy-tailed out-degrees, and a hub whose degree approaches
// the reported maximum.
func TwitterLike(rng *rand.Rand) (*graph.Graph, error) {
	return DirectedPreferentialAttachment(TwitterNodes, TwitterEdges, TwitterMaxDegree/2, 2.0, rng)
}

// TwitterLikeScaled returns a directed Twitter-like graph at 1/scale size.
func TwitterLikeScaled(scale int, rng *rand.Rand) (*graph.Graph, error) {
	if scale < 1 {
		scale = 1
	}
	return DirectedPreferentialAttachment(TwitterNodes/scale, TwitterEdges/scale, TwitterMaxDegree/(2*scale), 2.0, rng)
}
