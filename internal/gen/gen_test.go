package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"socialrec/internal/distribution"
)

func TestErdosRenyiGNM(t *testing.T) {
	rng := distribution.NewRNG(1)
	g, err := ErdosRenyiGNM(50, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 || g.NumEdges() != 100 {
		t.Errorf("got n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if g.Directed() {
		t.Error("should be undirected")
	}
}

func TestErdosRenyiGNMErrors(t *testing.T) {
	rng := distribution.NewRNG(1)
	if _, err := ErdosRenyiGNM(3, 4, rng); err == nil {
		t.Error("too many edges accepted")
	}
	if _, err := ErdosRenyiGNM(-1, 0, rng); err == nil {
		t.Error("negative n accepted")
	}
}

func TestErdosRenyiGNMComplete(t *testing.T) {
	rng := distribution.NewRNG(2)
	g, err := ErdosRenyiGNM(5, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 10 {
		t.Errorf("complete graph should have 10 edges, got %d", g.NumEdges())
	}
}

func TestErdosRenyiGNP(t *testing.T) {
	rng := distribution.NewRNG(3)
	g, err := ErdosRenyiGNP(100, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Expected edges = p * n(n-1)/2 = 495; allow wide tolerance.
	if m := g.NumEdges(); m < 350 || m > 650 {
		t.Errorf("edge count %d far from expectation 495", m)
	}
	if _, err := ErdosRenyiGNP(10, 1.5, rng); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := distribution.NewRNG(4)
	g, err := BarabasiAlbert(200, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Errorf("n = %d", g.NumNodes())
	}
	// Clique on 4 nodes (6 edges) + 196 nodes * 3 edges.
	if want := 6 + 196*3; g.NumEdges() != want {
		t.Errorf("m = %d, want %d", g.NumEdges(), want)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Every node has degree >= m.
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(v) < 3 {
			t.Errorf("node %d degree %d < m", v, g.Degree(v))
		}
	}
	// Preferential attachment produces hubs: max degree well above m.
	if g.MaxDegree() < 10 {
		t.Errorf("max degree %d suspiciously small for BA", g.MaxDegree())
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	rng := distribution.NewRNG(5)
	if _, err := BarabasiAlbert(3, 3, rng); err == nil {
		t.Error("n <= m accepted")
	}
	if _, err := BarabasiAlbert(10, 0, rng); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := distribution.NewRNG(6)
	g, err := WattsStrogatz(100, 4, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Errorf("n = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Ring lattice has exactly n*k/2 edges; rewiring preserves the count
	// unless an attempt exhausts retries, so allow small deficit.
	if m := g.NumEdges(); m < 190 || m > 200 {
		t.Errorf("m = %d, want ~200", m)
	}
}

func TestWattsStrogatzZeroBeta(t *testing.T) {
	rng := distribution.NewRNG(7)
	g, err := WattsStrogatz(10, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Pure ring lattice: every node has degree exactly k.
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("node %d degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	rng := distribution.NewRNG(8)
	if _, err := WattsStrogatz(10, 3, 0.1, rng); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := WattsStrogatz(4, 4, 0.1, rng); err == nil {
		t.Error("k >= n accepted")
	}
}

func TestPowerLawConfiguration(t *testing.T) {
	rng := distribution.NewRNG(9)
	g, err := PowerLawConfiguration(1000, 5000, 1, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1000 {
		t.Errorf("n = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Collisions drop some edges; expect within 30% of target.
	if m := g.NumEdges(); m < 3500 || m > 5000 {
		t.Errorf("m = %d, want near 5000", m)
	}
	// Heavy tail: the max degree should far exceed the mean (10).
	if g.MaxDegree() < 30 {
		t.Errorf("max degree %d lacks heavy tail", g.MaxDegree())
	}
}

func TestPowerLawConfigurationErrors(t *testing.T) {
	rng := distribution.NewRNG(10)
	if _, err := PowerLawConfiguration(1, 5, 0, 1.5, rng); err == nil {
		t.Error("n<2 accepted")
	}
	if _, err := PowerLawConfiguration(10, 5, 0, 0.5, rng); err == nil {
		t.Error("exponent<=1 accepted")
	}
}

func TestDirectedPreferentialAttachment(t *testing.T) {
	rng := distribution.NewRNG(11)
	g, err := DirectedPreferentialAttachment(2000, 10000, 100, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Fatal("should be directed")
	}
	if g.NumNodes() != 2000 {
		t.Errorf("n = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if m := g.NumEdges(); m < 2000 || m > 12000 {
		t.Errorf("m = %d, want near 10000", m)
	}
	// Node 0 got the hub boost: it should have a large in-degree.
	if g.InDegree(0) < 50 {
		t.Errorf("hub in-degree %d, want >> average", g.InDegree(0))
	}
}

func TestDirectedPreferentialAttachmentErrors(t *testing.T) {
	rng := distribution.NewRNG(12)
	if _, err := DirectedPreferentialAttachment(1, 10, 0, 2, rng); err == nil {
		t.Error("n<2 accepted")
	}
	if _, err := DirectedPreferentialAttachment(10, 10, -1, 2, rng); err == nil {
		t.Error("negative hub boost accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	g1, err := BarabasiAlbert(100, 2, distribution.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BarabasiAlbert(100, 2, distribution.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(g2) {
		t.Error("same seed produced different graphs")
	}
}

func TestWikiVoteLikeScaled(t *testing.T) {
	g, err := WikiVoteLikeScaled(10, distribution.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.Directed() {
		t.Error("wiki-vote graph should be undirected")
	}
	if g.NumNodes() != WikiVoteNodes/10 {
		t.Errorf("n = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Density should track the real dataset's m/n ≈ 14.2 within a factor.
	ratio := float64(g.NumEdges()) / float64(g.NumNodes())
	if ratio < 7 || ratio > 17 {
		t.Errorf("m/n = %g, want near 14", ratio)
	}
}

func TestTwitterLikeScaled(t *testing.T) {
	g, err := TwitterLikeScaled(50, distribution.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Error("twitter graph should be directed")
	}
	if g.NumNodes() != TwitterNodes/50 {
		t.Errorf("n = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestScaleClampedToOne(t *testing.T) {
	g, err := WikiVoteLikeScaled(0, distribution.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != WikiVoteNodes {
		t.Errorf("scale 0 should clamp to 1, n = %d", g.NumNodes())
	}
}

func TestPropertyGeneratedGraphsValid(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		ba, err := BarabasiAlbert(n, 2, rng)
		if err != nil || ba.Validate() != nil {
			return false
		}
		pl, err := PowerLawConfiguration(n, n*3, 1, 1.6, rng)
		if err != nil || pl.Validate() != nil {
			return false
		}
		dp, err := DirectedPreferentialAttachment(n, n*3, 5, 2.0, rng)
		if err != nil || dp.Validate() != nil {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}
