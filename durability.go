package socialrec

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"socialrec/internal/graph"
	"socialrec/internal/wal"
)

// Durability wiring: WithWAL journals every accepted mutation to a
// crash-safe write-ahead log before the mutation API acknowledges it, and
// replays the log on construction so a restart — graceful or kill -9 —
// reconstructs every acknowledged mutation. See doc.go's "Durability &
// failure model" section for the full contract.

// FsyncMode selects when WAL appends are flushed to stable storage; see
// the constants for the durability each mode buys.
type FsyncMode int

const (
	// FsyncAlways fsyncs before every mutation is acknowledged: no
	// acknowledged mutation is ever lost, even to a power cut. The
	// default, and the only mode under which the WAL's ack contract is
	// unconditional.
	FsyncAlways FsyncMode = iota
	// FsyncInterval acknowledges from the OS page cache and fsyncs on a
	// short background cadence: a process crash loses nothing, an
	// OS-level crash can lose up to one interval of acknowledged
	// mutations.
	FsyncInterval
	// FsyncOff never fsyncs explicitly; durability rides on OS
	// writeback. For tests and bulk loads only.
	FsyncOff
)

// String implements fmt.Stringer.
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("FsyncMode(%d)", int(m))
	}
}

// ParseFsyncMode parses "always", "interval", or "off" (the recserve
// -fsync flag values).
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off", "none":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("socialrec: unknown fsync mode %q (want always, interval, or off)", s)
	}
}

func (m FsyncMode) walPolicy() wal.SyncPolicy {
	switch m {
	case FsyncInterval:
		return wal.SyncInterval
	case FsyncOff:
		return wal.SyncOff
	default:
		return wal.SyncAlways
	}
}

// WALStats mirrors the log's gauges into LiveStats for /healthz.
type WALStats struct {
	// LastLSN is the sequence number of the newest journaled mutation.
	LastLSN uint64 `json:"last_lsn"`
	// CoveredLSN is the newest LSN folded into the serving snapshot;
	// LastLSN - CoveredLSN mutations would replay on restart.
	CoveredLSN uint64 `json:"covered_lsn"`
	// Segments and TruncatedSegments count live and reclaimed log files.
	Segments          int    `json:"segments"`
	TruncatedSegments uint64 `json:"truncated_segments"`
	// Fsync is the configured FsyncMode.
	Fsync string `json:"fsync"`
}

// Subsystem names reported by Degraded.
const (
	subsystemWAL     = "wal"
	subsystemPersist = "snapshot-persist"
	subsystemRebuild = "rebuild"
)

// healthTracker records which subsystems are persistently failing, so the
// serving tier can report "degraded" on /healthz instead of dying. Entries
// are set after retries are exhausted and cleared on the next success.
type healthTracker struct {
	mu      sync.Mutex
	failing map[string]string
}

func (h *healthTracker) set(subsystem string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.failing == nil {
		h.failing = make(map[string]string)
	}
	h.failing[subsystem] = err.Error()
}

func (h *healthTracker) clear(subsystem string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.failing, subsystem)
}

func (h *healthTracker) snapshot() map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.failing) == 0 {
		return nil
	}
	out := make(map[string]string, len(h.failing))
	for k, v := range h.failing {
		out[k] = v
	}
	return out
}

// Degraded returns the subsystems currently failing persistently (after
// retries), mapped to their last error — empty or nil when fully healthy.
// A degraded Recommender keeps serving recommendations from its last good
// snapshot; only the named subsystem's function (durable persistence, WAL
// journaling, snapshot rebuilds) is impaired.
func (r *Recommender) Degraded() map[string]string {
	return r.health.snapshot()
}

// walRecord converts a journaled graph delta to its WAL framing.
func walRecord(d graph.Delta) wal.Record {
	return wal.Record{Op: uint8(d.Op), From: int64(d.From), To: int64(d.To)}
}

// replayWALRecord applies one recovered mutation to the basis graph.
// Replay is idempotent by construction, which is what lets recovery apply
// the whole surviving log without knowing exactly which prefix the
// snapshot on disk already covers: an AddEdge already present, a
// RemoveEdge already absent, and an AddNode for an existing ID are each
// skipped, and (because per-edge operations alternate add/remove, and
// every operation forces its own postcondition whether applied or
// skipped) the final graph equals the true post-log state. Any other
// failure means the snapshot/WAL pair is inconsistent — e.g. mismatched
// files — and aborts recovery rather than serving a corrupt graph.
func replayWALRecord(g *Graph, rec wal.Record) error {
	switch graph.DeltaOp(rec.Op) {
	case graph.DeltaAddEdge:
		err := g.AddEdge(int(rec.From), int(rec.To))
		if errors.Is(err, graph.ErrDuplicateEdge) {
			return nil
		}
		return err
	case graph.DeltaRemoveEdge:
		err := g.RemoveEdge(int(rec.From), int(rec.To))
		if errors.Is(err, graph.ErrMissingEdge) {
			return nil
		}
		return err
	case graph.DeltaAddNode:
		id := int(rec.From)
		switch {
		case id < g.NumNodes():
			return nil // snapshot already covers this node
		case id == g.NumNodes():
			g.AddNode()
			return nil
		default:
			return fmt.Errorf("socialrec: WAL add-node %d skips past node count %d (snapshot/WAL mismatch)", id, g.NumNodes())
		}
	default:
		return fmt.Errorf("socialrec: unknown WAL op %d", rec.Op)
	}
}

// replayWAL folds every recovered record into g, in log order.
func replayWAL(g *Graph, recs []wal.Record) error {
	for i, rec := range recs {
		if err := replayWALRecord(g, rec); err != nil {
			return fmt.Errorf("socialrec: WAL replay failed at record %d of %d: %w", i+1, len(recs), err)
		}
	}
	return nil
}
