package socialrec

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func TestAccountantBasics(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccountant(rec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != 3 || a.Spent() != 0 || a.Remaining() != 3 {
		t.Errorf("fresh accountant: total=%g spent=%g remaining=%g", a.Total(), a.Spent(), a.Remaining())
	}
	target := pickTarget(t, g)
	for i := 0; i < 3; i++ {
		if _, err := a.Recommend(target); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if a.Remaining() > 1e-9 {
		t.Errorf("remaining = %g, want 0", a.Remaining())
	}
	if _, err := a.Recommend(target); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("fourth call: want ErrBudgetExhausted, got %v", err)
	}
	ledger := a.Ledger()
	if len(ledger) != 3 {
		t.Fatalf("ledger has %d entries", len(ledger))
	}
	for _, s := range ledger {
		if s.Target != target || s.K != 1 || s.Epsilon != 1 {
			t.Errorf("ledger entry %+v", s)
		}
	}
}

func TestAccountantTopKChargesOnce(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccountant(rec, 2)
	if err != nil {
		t.Fatal(err)
	}
	target := pickTarget(t, g)
	if _, err := a.RecommendTopK(target, 3); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Spent()-1) > 1e-12 {
		t.Errorf("top-k should charge one epsilon, spent %g", a.Spent())
	}
}

func TestAccountantRefundsFailedCalls(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccountant(rec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recommend(-1); !errors.Is(err, ErrBadTarget) {
		t.Fatalf("want ErrBadTarget, got %v", err)
	}
	if a.Spent() != 0 {
		t.Errorf("failed call should refund: spent %g", a.Spent())
	}
	if len(a.Ledger()) != 0 {
		t.Errorf("ledger should be empty after refund")
	}
}

func TestAccountantValidation(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAccountant(rec, 1); err == nil {
		t.Error("budget below per-call epsilon accepted")
	}
	if _, err := NewAccountant(nil, 5); err == nil {
		t.Error("nil recommender accepted")
	}
	np, err := NewRecommender(g, NonPrivate())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAccountant(np, 5); err == nil {
		t.Error("non-private recommender accepted")
	}
}

// TestAccountantExhaustionBoundary spends exactly to the cap, then checks
// that one more request — by a single ε or by any positive sliver past the
// boundary — fails with ErrBudgetExhausted and leaves the ledger intact.
func TestAccountantExhaustionBoundary(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	const budget = 4
	a, err := NewAccountant(rec, budget)
	if err != nil {
		t.Fatal(err)
	}
	target := pickTarget(t, g)
	for i := 0; i < budget; i++ {
		if _, err := a.Recommend(target); err != nil {
			t.Fatalf("call %d within budget failed: %v", i, err)
		}
	}
	if got := a.Spent(); got != budget {
		t.Fatalf("Spent() = %g after spending exactly the cap", got)
	}
	if got := a.Remaining(); got != 0 {
		t.Fatalf("Remaining() = %g at exhaustion", got)
	}
	// One more: single and top-k requests must both refuse.
	if _, err := a.Recommend(target); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("call past the cap: want ErrBudgetExhausted, got %v", err)
	}
	if _, err := a.RecommendTopK(target, 2); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("top-k past the cap: want ErrBudgetExhausted, got %v", err)
	}
	// The refusals must not have touched the ledger or the spend.
	if got := a.Spent(); got != budget {
		t.Fatalf("refused calls changed Spent() to %g", got)
	}
	if got := len(a.Ledger()); got != budget {
		t.Fatalf("refused calls changed ledger length to %d", got)
	}
}

// TestAccountantSpendRace hammers the accountant from spenders, top-k
// spenders, and concurrent readers of every accessor; run under -race it
// proves the mutex covers the ledger and counters, and the spend invariant
// holds under arbitrary interleavings.
func TestAccountantSpendRace(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	const budget = 64
	a, err := NewAccountant(rec, budget)
	if err != nil {
		t.Fatal(err)
	}
	target := pickTarget(t, g)

	var wg sync.WaitGroup
	var granted atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := a.Recommend(target); err == nil {
					granted.Add(1)
				} else if !errors.Is(err, ErrBudgetExhausted) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := a.RecommendTopK(target, 2); err == nil {
					granted.Add(1)
				} else if !errors.Is(err, ErrBudgetExhausted) {
					t.Errorf("unexpected top-k error: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if spent := a.Spent(); spent < 0 || spent > budget+1e-9 {
				t.Errorf("Spent() = %g outside [0, %d]", spent, budget)
				return
			}
			_ = a.Remaining()
			_ = a.Ledger()
			_ = a.Total()
		}
	}()
	wg.Wait()

	if got := granted.Load(); got != budget {
		t.Errorf("granted %d calls on a budget of %d", got, budget)
	}
	if spent := a.Spent(); spent != budget {
		t.Errorf("final Spent() = %g, want %d", spent, budget)
	}
	if got := len(a.Ledger()); got != budget {
		t.Errorf("ledger has %d entries, want %d", got, budget)
	}
}

// ledgerInvariant checks, in one atomic observation, that the accountant's
// reported spend equals the sum of its live ledger entries and that its
// O(1) call counter matches the live entry count. This is the invariant
// the old append-then-truncate refund corrupted: a refund racing a
// successful Spend deleted the success's entry instead of its own.
func ledgerInvariant(t *testing.T, a *Accountant) {
	t.Helper()
	a.mu.Lock()
	spent := a.spent
	var sum float64
	live := 0
	for _, e := range a.ledger {
		if !e.refunded {
			sum += e.s.Epsilon
			live++
		}
	}
	a.mu.Unlock()
	if math.Abs(spent-sum) > 1e-9 {
		t.Errorf("ledger invariant broken: Spent %g != sum of ledger %g (%d live entries)", spent, sum, live)
	}
}

// TestAccountantRefundRaceHammer is the regression test for the refund
// bug: concurrent Recommend/RecommendTopK calls across many principals,
// some failing (out-of-range targets) and refunded, while a checker
// continuously asserts Spent() == Σ Ledger(). Under the old truncate-last
// refund, a failed call's refund deleted a concurrent success's entry; the
// final ledger then disagrees with the success count.
func TestAccountantRefundRaceHammer(t *testing.T) {
	g, err := GenerateSocialGraph(256, 4096, 7)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	// Budgets high enough that nothing exhausts: this test isolates the
	// refund race from admission.
	a, err := NewAccountant(rec, 1e9, PerPrincipalBudget(1e6))
	if err != nil {
		t.Fatal(err)
	}

	// ≥ 64 principals: every valid target is its own principal under the
	// default key, and each failing worker also uses a distinct negative
	// target (its own principal).
	const (
		workers = 8
		ops     = 120
		targets = 96
	)
	var successes atomic.Int64
	var failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				switch i % 3 {
				case 0: // guaranteed failure: out-of-range target, refunded
					if _, err := a.Recommend(-1 - w); !errors.Is(err, ErrBadTarget) {
						t.Errorf("want ErrBadTarget, got %v", err)
						return
					}
					failures.Add(1)
				case 1:
					if _, err := a.Recommend((w*ops + i) % targets); err == nil {
						successes.Add(1)
					} else if !errors.Is(err, ErrNoCandidates) {
						t.Errorf("unexpected error: %v", err)
						return
					}
				default:
					if _, err := a.RecommendTopK((w*ops+i)%targets, 2); err == nil {
						successes.Add(1)
					} else if !errors.Is(err, ErrNoCandidates) {
						t.Errorf("unexpected top-k error: %v", err)
						return
					}
				}
			}
		}(w)
	}
	// The invariant checker runs while the hammer is live: the ledger and
	// its sum must agree at every observable instant, not just at the end.
	stop := make(chan struct{})
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ledgerInvariant(t, a)
			}
		}
	}()
	wg.Wait()
	close(stop)
	checker.Wait()

	// No entry lost, none double-refunded: exactly the successful calls
	// remain, and the spend is exactly ε per success.
	ledgerInvariant(t, a)
	if got, want := len(a.Ledger()), int(successes.Load()); got != want {
		t.Errorf("ledger has %d entries, want %d (one per success; %d failures refunded)",
			got, want, failures.Load())
	}
	if got, want := a.Spent(), float64(successes.Load()); got != want {
		t.Errorf("Spent() = %g, want %g", got, want)
	}
	if got, want := a.Calls(), int(successes.Load()); got != want {
		t.Errorf("Calls() = %d, want %d", got, want)
	}
	if a.Principals() < 64 {
		t.Errorf("hammer touched %d principals, want >= 64", a.Principals())
	}
}

// TestAccountantPerPrincipalExhaustion checks the per-principal boundary:
// a principal at its cap is refused with its own key in the error while
// other principals — and the uncapped global scope — keep serving.
func TestAccountantPerPrincipalExhaustion(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccountant(rec, 0, PerPrincipalBudget(2)) // no global cap
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(a.Remaining(), 1) {
		t.Errorf("uncapped global Remaining() = %g, want +Inf", a.Remaining())
	}
	target := pickTarget(t, g)
	other := -1
	for v := 0; v < g.NumNodes(); v++ {
		if v != target {
			if _, err := rec.ExpectedAccuracy(v); err == nil {
				other = v
				break
			}
		}
	}
	if other < 0 {
		t.Fatal("no second servable target")
	}
	for i := 0; i < 2; i++ {
		if _, err := a.Recommend(target); err != nil {
			t.Fatalf("call %d within principal budget: %v", i, err)
		}
	}
	_, err = a.Recommend(target)
	var be *BudgetError
	if !errors.Is(err, ErrBudgetExhausted) || !errors.As(err, &be) {
		t.Fatalf("exhausted principal: got %v", err)
	}
	if be.Principal != a.PrincipalFor(target) || be.Remaining() != 0 {
		t.Errorf("refusal detail: %+v", be)
	}
	// Independence: the other principal still serves.
	if _, err := a.Recommend(other); err != nil {
		t.Errorf("other principal refused after first exhausted: %v", err)
	}
	// Introspection matches.
	st := a.TargetStats(target)
	if st.Spent != 2 || st.Remaining != 0 || st.Calls != 2 {
		t.Errorf("exhausted target stats: %+v", st)
	}
	if st := a.TargetStats(other); st.Spent != 1 || st.Remaining != 1 {
		t.Errorf("other target stats: %+v", st)
	}
	if a.Principals() != 2 {
		t.Errorf("Principals() = %d, want 2", a.Principals())
	}
}

// TestAccountantGlobalVsPerPrincipal checks that with both caps set, the
// global one binds across principals even when no principal is at its own
// cap.
func TestAccountantGlobalVsPerPrincipal(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(22))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccountant(rec, 3, PerPrincipalBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	var servable []int
	for v := 0; v < g.NumNodes() && len(servable) < 2; v++ {
		if _, err := rec.ExpectedAccuracy(v); err == nil {
			servable = append(servable, v)
		}
	}
	if len(servable) < 2 {
		t.Fatal("need two servable targets")
	}
	// 2 calls for A (its cap), 1 for B: global cap of 3 reached with B
	// under its own cap.
	for i := 0; i < 2; i++ {
		if _, err := a.Recommend(servable[0]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Recommend(servable[1]); err != nil {
		t.Fatal(err)
	}
	_, err = a.Recommend(servable[1])
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want budget refusal, got %v", err)
	}
	if be.Principal != "" {
		t.Errorf("global refusal names principal %q", be.Principal)
	}
}

// TestAccountantRemainingClamped is the float-drift regression: charges
// admitted within the 1e-12 tolerance can push the spend a hair past the
// cap, and Remaining() must clamp at 0 instead of reporting the negative
// drift to clients.
func TestAccountantRemainingClamped(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(0.1), WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccountant(rec, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	target := pickTarget(t, g)
	for i := 0; i < 3; i++ {
		if _, err := a.Recommend(target); err != nil {
			t.Fatalf("call %d within tolerance: %v", i, err)
		}
	}
	// 0.1*3 = 0.30000000000000004 > 0.3: spent exceeds the cap by drift.
	if a.Spent() <= 0.3 {
		t.Skipf("float drift did not materialize: spent %g", a.Spent())
	}
	if got := a.Remaining(); got != 0 {
		t.Errorf("Remaining() = %g, want exactly 0 (never negative)", got)
	}
}

func TestAccountantCallsCounter(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(24))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccountant(rec, 10)
	if err != nil {
		t.Fatal(err)
	}
	target := pickTarget(t, g)
	if _, err := a.Recommend(target); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recommend(-1); !errors.Is(err, ErrBadTarget) {
		t.Fatalf("want ErrBadTarget, got %v", err)
	}
	if _, err := a.RecommendTopK(target, 2); err != nil {
		t.Fatal(err)
	}
	if got := a.Calls(); got != 2 {
		t.Errorf("Calls() = %d, want 2 (refunded call excluded)", got)
	}
	if got := len(a.Ledger()); got != a.Calls() {
		t.Errorf("Calls() = %d != len(Ledger()) = %d", a.Calls(), got)
	}
}

func TestAccountantOptionValidation(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAccountant(rec, 0); err == nil {
		t.Error("no budget at all accepted")
	}
	if _, err := NewAccountant(rec, 10, PerPrincipalBudget(0.5)); err == nil {
		t.Error("per-principal budget below per-call epsilon accepted")
	}
	if _, err := NewAccountant(rec, 10, PerPrincipalBudget(-1)); err == nil {
		t.Error("negative per-principal budget accepted")
	}
	if _, err := NewAccountant(rec, 10, PrincipalKeyFunc(nil)); err == nil {
		t.Error("nil key func accepted")
	}
	a, err := NewAccountant(rec, 0, PerPrincipalBudget(5))
	if err != nil {
		t.Fatalf("per-principal-only accountant: %v", err)
	}
	if a.Total() != 0 || a.PerPrincipalLimit() != 5 {
		t.Errorf("limits = %g/%g", a.Total(), a.PerPrincipalLimit())
	}
}

// TestAccountantLedgerBoundedUnderRefundLoops: refunded charges tombstone
// their ledger entry, and compaction must reclaim the tombstones — an
// endless loop of admitted-then-refunded calls (each failure restores the
// budget, so it never terminates via exhaustion) must not grow the ledger
// without bound.
func TestAccountantLedgerBoundedUnderRefundLoops(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(28))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccountant(rec, 5)
	if err != nil {
		t.Fatal(err)
	}
	target := pickTarget(t, g)
	if _, err := a.Recommend(target); err != nil {
		t.Fatal(err)
	}
	const failures = 5000
	for i := 0; i < failures; i++ {
		if _, err := a.Recommend(-1); !errors.Is(err, ErrBadTarget) {
			t.Fatalf("failure %d: want ErrBadTarget, got %v", i, err)
		}
	}
	a.mu.Lock()
	size := len(a.ledger)
	a.mu.Unlock()
	if size > 2048 {
		t.Errorf("ledger holds %d entries after %d refunded calls (compaction not reclaiming tombstones)", size, failures)
	}
	if got := a.Ledger(); len(got) != 1 || got[0].Target != target {
		t.Errorf("live ledger after refund loop: %v", got)
	}
	if a.Spent() != 1 || a.Calls() != 1 {
		t.Errorf("counters after refund loop: spent=%g calls=%d", a.Spent(), a.Calls())
	}
}

// TestAccountantDisableLedger checks the ledger-free mode keeps every
// counter (spent, remaining, calls, per-principal stats) and admission
// decision intact while Ledger() reports nothing.
func TestAccountantDisableLedger(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(27))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccountant(rec, 3, DisableLedger())
	if err != nil {
		t.Fatal(err)
	}
	target := pickTarget(t, g)
	for i := 0; i < 3; i++ {
		if _, err := a.Recommend(target); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if _, err := a.Recommend(target); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("fourth call: want ErrBudgetExhausted, got %v", err)
	}
	if _, err := a.Recommend(-1); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("refund path must still see exhaustion first, got %v", err)
	}
	if a.Spent() != 3 || a.Remaining() != 0 || a.Calls() != 3 {
		t.Errorf("counters: spent=%g remaining=%g calls=%d", a.Spent(), a.Remaining(), a.Calls())
	}
	if got := a.Ledger(); got != nil {
		t.Errorf("disabled ledger returned %d entries", len(got))
	}
	if st := a.TargetStats(target); st.Spent != 3 || st.Calls != 3 {
		t.Errorf("target stats: %+v", st)
	}
}

func TestAccountantCustomKeyFunc(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(25))
	if err != nil {
		t.Fatal(err)
	}
	// All targets share one tenant key: the per-principal cap behaves
	// globally.
	a, err := NewAccountant(rec, 0, PerPrincipalBudget(2),
		PrincipalKeyFunc(func(int) string { return "tenant-a" }))
	if err != nil {
		t.Fatal(err)
	}
	var servable []int
	for v := 0; v < g.NumNodes() && len(servable) < 2; v++ {
		if _, err := rec.ExpectedAccuracy(v); err == nil {
			servable = append(servable, v)
		}
	}
	if len(servable) < 2 {
		t.Fatal("need two servable targets")
	}
	if _, err := a.Recommend(servable[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recommend(servable[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recommend(servable[0]); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("shared tenant key: want exhaustion on third call, got %v", err)
	}
	// RecommendAs bypasses the extractor.
	if _, err := a.RecommendAs("tenant-b", servable[0]); err != nil {
		t.Errorf("distinct explicit principal refused: %v", err)
	}
	if s := a.PrincipalStats("tenant-a"); s.Spent != 2 || s.Calls != 2 {
		t.Errorf("tenant-a stats: %+v", s)
	}
}

// TestAccountantBatchPartialRefusal: one reservation round charges the
// whole batch, refusing per target. A duplicate target past its principal
// cap is refused in place while its neighbors proceed, and a granted
// target that fails evaluation is refunded individually.
func TestAccountantBatchPartialRefusal(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(26))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccountant(rec, 0, PerPrincipalBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	var servable []int
	for v := 0; v < g.NumNodes() && len(servable) < 2; v++ {
		if _, err := rec.ExpectedAccuracy(v); err == nil {
			servable = append(servable, v)
		}
	}
	if len(servable) < 2 {
		t.Fatal("need two servable targets")
	}
	// Slots: [granted, refused duplicate (cap 1), granted other, failing
	// target (granted then refunded)].
	batch := []int{servable[0], servable[0], servable[1], -1}
	out := a.BatchRecommend(batch)
	if out[0].Err != nil {
		t.Errorf("slot 0: %v", out[0].Err)
	}
	if !errors.Is(out[1].Err, ErrBudgetExhausted) {
		t.Errorf("slot 1 (duplicate past cap): want exhaustion, got %v", out[1].Err)
	}
	if out[2].Err != nil {
		t.Errorf("slot 2 (other principal): %v", out[2].Err)
	}
	if !errors.Is(out[3].Err, ErrBadTarget) {
		t.Errorf("slot 3 (bad target): want ErrBadTarget, got %v", out[3].Err)
	}
	// Spend: slots 0 and 2 only; slot 1 never charged, slot 3 refunded.
	if got := a.Spent(); got != 2 {
		t.Errorf("Spent() = %g after batch, want 2", got)
	}
	if got := len(a.Ledger()); got != 2 {
		t.Errorf("ledger has %d entries, want 2", got)
	}
	// Granted slots are bit-identical to individual calls on a fresh
	// accountant over the same seed.
	rec2, err := NewRecommender(g, WithEpsilon(1), WithSeed(26))
	if err != nil {
		t.Fatal(err)
	}
	want, err := rec2.Recommend(servable[0])
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Recommendation != want {
		t.Errorf("batch slot 0 = %+v, want %+v", out[0].Recommendation, want)
	}
	// Top-k variant: same partial-refusal shape.
	outK := a.BatchRecommendTopK([]int{servable[0], servable[1]}, 2)
	if !errors.Is(outK[0].Err, ErrBudgetExhausted) {
		t.Errorf("top-k slot 0: principal already exhausted, got %v", outK[0].Err)
	}
	if !errors.Is(outK[1].Err, ErrBudgetExhausted) {
		t.Errorf("top-k slot 1: principal already exhausted, got %v", outK[1].Err)
	}
}

func TestAccountantConcurrentNeverOverspends(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	const budget = 10
	a, err := NewAccountant(rec, budget)
	if err != nil {
		t.Fatal(err)
	}
	target := pickTarget(t, g)
	var wg sync.WaitGroup
	var mu sync.Mutex
	successes := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := a.Recommend(target); err == nil {
					mu.Lock()
					successes++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if successes != budget {
		t.Errorf("%d successful calls on a budget of %d", successes, budget)
	}
	if a.Spent() > budget+1e-9 {
		t.Errorf("overspent: %g", a.Spent())
	}
}
