package socialrec

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func TestAccountantBasics(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccountant(rec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != 3 || a.Spent() != 0 || a.Remaining() != 3 {
		t.Errorf("fresh accountant: total=%g spent=%g remaining=%g", a.Total(), a.Spent(), a.Remaining())
	}
	target := pickTarget(t, g)
	for i := 0; i < 3; i++ {
		if _, err := a.Recommend(target); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if a.Remaining() > 1e-9 {
		t.Errorf("remaining = %g, want 0", a.Remaining())
	}
	if _, err := a.Recommend(target); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("fourth call: want ErrBudgetExhausted, got %v", err)
	}
	ledger := a.Ledger()
	if len(ledger) != 3 {
		t.Fatalf("ledger has %d entries", len(ledger))
	}
	for _, s := range ledger {
		if s.Target != target || s.K != 1 || s.Epsilon != 1 {
			t.Errorf("ledger entry %+v", s)
		}
	}
}

func TestAccountantTopKChargesOnce(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccountant(rec, 2)
	if err != nil {
		t.Fatal(err)
	}
	target := pickTarget(t, g)
	if _, err := a.RecommendTopK(target, 3); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Spent()-1) > 1e-12 {
		t.Errorf("top-k should charge one epsilon, spent %g", a.Spent())
	}
}

func TestAccountantRefundsFailedCalls(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAccountant(rec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recommend(-1); !errors.Is(err, ErrBadTarget) {
		t.Fatalf("want ErrBadTarget, got %v", err)
	}
	if a.Spent() != 0 {
		t.Errorf("failed call should refund: spent %g", a.Spent())
	}
	if len(a.Ledger()) != 0 {
		t.Errorf("ledger should be empty after refund")
	}
}

func TestAccountantValidation(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAccountant(rec, 1); err == nil {
		t.Error("budget below per-call epsilon accepted")
	}
	if _, err := NewAccountant(nil, 5); err == nil {
		t.Error("nil recommender accepted")
	}
	np, err := NewRecommender(g, NonPrivate())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAccountant(np, 5); err == nil {
		t.Error("non-private recommender accepted")
	}
}

// TestAccountantExhaustionBoundary spends exactly to the cap, then checks
// that one more request — by a single ε or by any positive sliver past the
// boundary — fails with ErrBudgetExhausted and leaves the ledger intact.
func TestAccountantExhaustionBoundary(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	const budget = 4
	a, err := NewAccountant(rec, budget)
	if err != nil {
		t.Fatal(err)
	}
	target := pickTarget(t, g)
	for i := 0; i < budget; i++ {
		if _, err := a.Recommend(target); err != nil {
			t.Fatalf("call %d within budget failed: %v", i, err)
		}
	}
	if got := a.Spent(); got != budget {
		t.Fatalf("Spent() = %g after spending exactly the cap", got)
	}
	if got := a.Remaining(); got != 0 {
		t.Fatalf("Remaining() = %g at exhaustion", got)
	}
	// One more: single and top-k requests must both refuse.
	if _, err := a.Recommend(target); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("call past the cap: want ErrBudgetExhausted, got %v", err)
	}
	if _, err := a.RecommendTopK(target, 2); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("top-k past the cap: want ErrBudgetExhausted, got %v", err)
	}
	// The refusals must not have touched the ledger or the spend.
	if got := a.Spent(); got != budget {
		t.Fatalf("refused calls changed Spent() to %g", got)
	}
	if got := len(a.Ledger()); got != budget {
		t.Fatalf("refused calls changed ledger length to %d", got)
	}
}

// TestAccountantSpendRace hammers the accountant from spenders, top-k
// spenders, and concurrent readers of every accessor; run under -race it
// proves the mutex covers the ledger and counters, and the spend invariant
// holds under arbitrary interleavings.
func TestAccountantSpendRace(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	const budget = 64
	a, err := NewAccountant(rec, budget)
	if err != nil {
		t.Fatal(err)
	}
	target := pickTarget(t, g)

	var wg sync.WaitGroup
	var granted atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := a.Recommend(target); err == nil {
					granted.Add(1)
				} else if !errors.Is(err, ErrBudgetExhausted) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := a.RecommendTopK(target, 2); err == nil {
					granted.Add(1)
				} else if !errors.Is(err, ErrBudgetExhausted) {
					t.Errorf("unexpected top-k error: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if spent := a.Spent(); spent < 0 || spent > budget+1e-9 {
				t.Errorf("Spent() = %g outside [0, %d]", spent, budget)
				return
			}
			_ = a.Remaining()
			_ = a.Ledger()
			_ = a.Total()
		}
	}()
	wg.Wait()

	if got := granted.Load(); got != budget {
		t.Errorf("granted %d calls on a budget of %d", got, budget)
	}
	if spent := a.Spent(); spent != budget {
		t.Errorf("final Spent() = %g, want %d", spent, budget)
	}
	if got := len(a.Ledger()); got != budget {
		t.Errorf("ledger has %d entries, want %d", got, budget)
	}
}

func TestAccountantConcurrentNeverOverspends(t *testing.T) {
	g := topKGraph(t)
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	const budget = 10
	a, err := NewAccountant(rec, budget)
	if err != nil {
		t.Fatal(err)
	}
	target := pickTarget(t, g)
	var wg sync.WaitGroup
	var mu sync.Mutex
	successes := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := a.Recommend(target); err == nil {
					mu.Lock()
					successes++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if successes != budget {
		t.Errorf("%d successful calls on a budget of %d", successes, budget)
	}
	if a.Spent() > budget+1e-9 {
		t.Errorf("overspent: %g", a.Spent())
	}
}
