package socialrec

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"socialrec/internal/coalesce"
	"socialrec/internal/mechanism"
)

// The utility-vector cache memoizes the deterministic pre-processing stage
// of serving: for a fixed graph snapshot, a target's compacted utility
// vector, candidate list, and maximum utility never change, while the DP
// noise — the only part of a recommendation that must be fresh — is applied
// afterwards, per draw. Caching this stage is therefore pure pre-processing
// under the paper's privacy definition: the mechanism's output distribution
// is identical with and without the cache, so the ε guarantee is untouched.
// Cached values hold raw (non-private) utilities and must never leave the
// process; only the Recommendation values derived from fresh noise do.
//
// Entries are keyed by (epoch, target). The epoch increments whenever the
// Recommender swaps in a new graph snapshot (RefreshSnapshot or a live
// Rebuild). At each swap, advance sweeps every shard once: entries of the
// outgoing epoch that the swap provably did not touch are re-keyed to the
// new epoch in place (delta-aware invalidation, see invalidate.go), while
// affected and dead-epoch entries are removed immediately — so CacheStats
// never counts unusable residue and a high-churn live graph keeps serving
// warm. Without delta information (or with WithDeltaInvalidation off) the
// sweep degenerates to a full flush. The cache is sharded to keep lock
// contention negligible under concurrent serving.

// DefaultCacheSize is the entry cap EnableCache uses when given a
// non-positive size.
const DefaultCacheSize = 4096

// DefaultCoalesceWindow is the deadline window EnableCoalescing uses when
// given a non-positive duration: long enough for a high-QPS burst of
// duplicate targets to accumulate, short enough to stay invisible next to
// network round-trip times.
const DefaultCoalesceWindow = time.Millisecond

// coalKey identifies one shareable pre-noise computation: a target under a
// specific snapshot epoch. Epoch-keying keeps a request that raced past a
// snapshot swap from being handed a vector computed on the other side of
// it — groups never mix snapshots, mirroring the cache's (epoch, target)
// keying.
type coalKey struct {
	epoch  uint64
	target int
}

// targetCoalescer coalesces concurrent pre-noise computations per
// (epoch, target); see internal/coalesce and the "Request coalescing"
// section of doc.go.
type targetCoalescer = coalesce.Coalescer[coalKey, *cachedVector]

// CoalesceStats is a point-in-time snapshot of the request coalescer's
// counters, exposed for operational monitoring (recserver's /healthz).
type CoalesceStats struct {
	// Requests counts pre-noise computations requested through the
	// coalescer (cache hits never reach it).
	Requests uint64 `json:"requests"`
	// Groups counts coalesce groups formed — shared computations actually
	// executed, one per group.
	Groups uint64 `json:"groups"`
	// Shared counts requests that joined an existing group and skipped the
	// computation; Requests == Groups + Shared.
	Shared uint64 `json:"shared"`
	// WindowNs is the configured deadline window in nanoseconds.
	WindowNs int64 `json:"window_ns"`
}

// EnableCoalescing turns on deadline-based coalescing of the pre-noise
// serving stage with the given window (DefaultCoalesceWindow when window
// <= 0). Like EnableCache it is first-wins: a no-op if coalescing is
// already enabled. Coalescing shares only the deterministic pre-noise
// computation between concurrent requests for the same target — every
// request still draws its own noise afterwards — so it never changes any
// recommendation's distribution; see doc.go.
func (r *Recommender) EnableCoalescing(window time.Duration) {
	if window <= 0 {
		window = DefaultCoalesceWindow
	}
	r.coal.CompareAndSwap(nil, coalesce.New[coalKey, *cachedVector](window))
}

// CoalesceStats returns the request coalescer's counters. The second
// return is false when coalescing is not enabled.
func (r *Recommender) CoalesceStats() (CoalesceStats, bool) {
	co := r.coal.Load()
	if co == nil {
		return CoalesceStats{}, false
	}
	st := co.Stats()
	return CoalesceStats{
		Requests: st.Requests,
		Groups:   st.Groups,
		Shared:   st.Shared,
		WindowNs: int64(co.Window()),
	}, true
}

// computeShared runs the deterministic pre-noise stage for target and
// populates the cache (when one is enabled). It is the single entry point
// serving misses and cache warmers go through: with coalescing enabled,
// concurrent calls for the same (epoch, target) share one computation —
// warmers via DoNow (no deadline wait), serving misses via Do (deadline
// window, so a duplicate burst accumulates into one group).
func (r *Recommender) computeShared(st *snapState, c *vectorCache, target int, warm bool) (*cachedVector, error) {
	compute := func() (*cachedVector, error) {
		cv, err := r.computeVector(st, target)
		if err == nil && c != nil {
			c.put(st.epoch, target, cv)
		}
		return cv, err
	}
	co := r.coal.Load()
	if co == nil {
		return compute()
	}
	if warm {
		return co.DoNow(coalKey{epoch: st.epoch, target: target}, compute)
	}
	return co.Do(coalKey{epoch: st.epoch, target: target}, compute)
}

// cacheShardCount must be a power of two; 16 shards keep contention low at
// typical server parallelism without wasting memory on tiny graphs.
const cacheShardCount = 16

// CacheStats is a point-in-time snapshot of the utility-vector cache's
// effectiveness, exposed for operational monitoring (e.g. recserver's
// /healthz endpoint).
type CacheStats struct {
	// Hits counts vector() calls answered from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts vector() calls that had to recompute.
	Misses uint64 `json:"misses"`
	// Entries is the current number of cached targets across all shards.
	Entries int `json:"entries"`
	// Capacity is the configured entry cap.
	Capacity int `json:"capacity"`
	// Bytes approximates the resident size of all cached entries. Sparse
	// entries cost O(nonzeros), not O(n); recbench tracks the per-entry
	// figure against the dense representation.
	Bytes int64 `json:"approx_bytes"`
	// Retained counts entries carried across snapshot swaps by delta-aware
	// invalidation (re-keyed to the new epoch instead of discarded).
	Retained uint64 `json:"retained"`
	// Invalidated counts entries discarded at snapshot swaps — because a
	// delta batch touched their dependency closure, or because the swap had
	// no delta information and flushed everything.
	Invalidated uint64 `json:"invalidated"`
}

// cachedVector is the immutable per-target pre-processing result, held in
// sparse form: on sparse graphs a target's utility vector has a few hundred
// nonzeros out of n, so an entry costs O(nnz) bytes instead of the O(n) a
// dense vector + candidate list would (the recbench sparse scenario
// measures the reduction). The slices are shared between the cache and all
// readers and must never be mutated after insertion. umax == 0 records a
// negative result (the target has no positive-utility candidate), so
// repeated requests for hopeless targets are served without a graph scan
// too.
type cachedVector struct {
	// idx holds the candidate node IDs with nonzero utility, ascending; val
	// the matching utilities (utility.Function.Sparse output).
	idx []int32
	val []float64
	// umax is the maximum utility (R_best's score).
	umax float64
	// ncand is the total candidate-domain size: len(idx) nonzeros plus
	// ncand-len(idx) implicit zero-utility candidates.
	ncand int
	// skip is the sorted union of the non-candidates (the target and its
	// out-neighbors) and idx: the order-statistic table that maps a
	// mechanism's zero-tail rank back to a node ID in O(log) time.
	skip []int32
	// cdf is the exponential mechanism's sparse cumulative-weight form
	// (nil for other mechanisms); see mechanism.SparseCDF.
	cdf *mechanism.SparseCDF
}

// sparseVec is the mechanism-facing view of the cached entry.
func (cv *cachedVector) sparseVec() mechanism.SparseVec {
	return mechanism.SparseVec{Val: cv.val, N: cv.ncand}
}

// resolve maps a mechanism pick back to (node ID, raw utility): support
// picks read the cached arrays, tail picks select the rank-th node not in
// the skip table.
func (cv *cachedVector) resolve(p mechanism.Pick) (int, float64) {
	if !p.IsTail() {
		return int(cv.idx[p.Support]), cv.val[p.Support]
	}
	return complementSelect(cv.skip, p.Tail), 0
}

// bytes approximates the entry's resident footprint, reported through
// CacheStats for capacity planning and the recbench memory comparison.
func (cv *cachedVector) bytes() int {
	b := 64 + 4*len(cv.idx) + 8*len(cv.val) + 4*len(cv.skip)
	if cv.cdf != nil {
		b += cv.cdf.Bytes()
	}
	return b
}

// complementSelect returns the k-th (0-based, ascending) node ID absent
// from the sorted skip table: binary search for the first position i with
// skip[i]-i > k — i is then the number of skipped IDs at or below the
// answer k+i.
func complementSelect(skip []int32, k int) int {
	lo, hi := 0, len(skip)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(skip[mid])-mid > k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return k + lo
}

type cacheKey struct {
	epoch  uint64
	target int
}

type cacheEntry struct {
	key cacheKey
	val *cachedVector
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*list.Element
	lru     list.List // front = most recently used
	cap     int
	// bytes is the running footprint of the shard's entries, maintained on
	// insert/refresh/evict so stats() stays O(1) per shard instead of
	// walking the LRU under the lock.
	bytes int64
	// rev is the reverse dependency index powering delta-aware
	// invalidation (nil unless the cache tracks closures): it maps every
	// node of a live entry's dependency closure — the target, its
	// out-neighbors, and its nonzero support, i.e. exactly the skip table —
	// to the targets cached under it. advance consults it to decide which
	// entries a drained delta batch doomed. Buckets are multisets: a target
	// appears once per live entry registering the node (entries of the same
	// target at different epochs can briefly coexist).
	rev map[int32][]int
}

// register records ent's dependency closure in the reverse index.
func (s *cacheShard) register(ent *cacheEntry) {
	if s.rev == nil {
		return
	}
	for _, node := range ent.val.skip {
		s.rev[node] = append(s.rev[node], ent.key.target)
	}
}

// unregister removes one occurrence of ent's registrations (swap-remove;
// bucket order is irrelevant). Must mirror a prior register with the same
// ent.val.
func (s *cacheShard) unregister(ent *cacheEntry) {
	if s.rev == nil {
		return
	}
	for _, node := range ent.val.skip {
		bucket := s.rev[node]
		for i, t := range bucket {
			if t == ent.key.target {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(s.rev, node)
		} else {
			s.rev[node] = bucket
		}
	}
}

// detach removes el from the LRU, the byte gauge, and the reverse index —
// everything but the entries map, whose key the caller owns (it may already
// have been deleted or re-pointed during a re-key collision).
func (s *cacheShard) detach(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	s.lru.Remove(el)
	s.bytes -= int64(ent.val.bytes())
	s.unregister(ent)
}

// vectorCache is a sharded, epoch-keyed LRU cache of cachedVector values.
type vectorCache struct {
	shards [cacheShardCount]cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
	// retained / invalidated are the cumulative swap-time counters behind
	// CacheStats.Retained / .Invalidated.
	retained    atomic.Uint64
	invalidated atomic.Uint64
	cap         int
}

// newVectorCache builds a cache honoring exactly the requested entry cap:
// the cap is distributed across the 16 shards with the remainder spread one
// entry each over the first size%16 shards, so EnableCache(100) admits 100
// entries, not 112. Caps below the shard count leave some shards at zero —
// targets hashing there are simply never cached. track enables the reverse
// dependency index delta-aware invalidation needs (WithDeltaInvalidation).
func newVectorCache(size int, track bool) *vectorCache {
	if size <= 0 {
		size = DefaultCacheSize
	}
	perShard, rem := size/cacheShardCount, size%cacheShardCount
	c := &vectorCache{cap: size}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*list.Element)
		c.shards[i].cap = perShard
		if i < rem {
			c.shards[i].cap++
		}
		if track {
			c.shards[i].rev = make(map[int32][]int)
		}
	}
	return c
}

func (c *vectorCache) shard(target int) *cacheShard {
	return &c.shards[uint(target)&(cacheShardCount-1)]
}

// get returns the cached pre-processing result for (epoch, target), if any.
func (c *vectorCache) get(epoch uint64, target int) (*cachedVector, bool) {
	s := c.shard(target)
	key := cacheKey{epoch: epoch, target: target}
	s.mu.Lock()
	el, ok := s.entries[key]
	var val *cachedVector
	if ok {
		s.lru.MoveToFront(el)
		// Read the value inside the critical section: put refreshes
		// entries in place, so touching el after unlock would race.
		val = el.Value.(*cacheEntry).val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return val, true
}

// contains reports whether (epoch, target) is cached, refreshing its LRU
// position but NOT the hit/miss counters — cache warmers use it so the
// exported stats keep reflecting serving traffic only.
func (c *vectorCache) contains(epoch uint64, target int) bool {
	s := c.shard(target)
	key := cacheKey{epoch: epoch, target: target}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if ok {
		s.lru.MoveToFront(el)
	}
	return ok
}

// put inserts (or refreshes) the entry, evicting the least recently used
// entry of the shard when it is full.
func (c *vectorCache) put(epoch uint64, target int, val *cachedVector) {
	s := c.shard(target)
	key := cacheKey{epoch: epoch, target: target}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cap == 0 {
		// Possible when the configured cap is below the shard count; this
		// shard admits nothing so the cache never exceeds the requested cap.
		return
	}
	if el, ok := s.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		s.unregister(ent)
		s.bytes += int64(val.bytes()) - int64(ent.val.bytes())
		ent.val = val
		s.register(ent)
		s.lru.MoveToFront(el)
		return
	}
	for s.lru.Len() >= s.cap {
		oldest := s.lru.Back()
		ent := oldest.Value.(*cacheEntry)
		delete(s.entries, ent.key)
		s.detach(oldest)
	}
	ent := &cacheEntry{key: key, val: val}
	s.entries[key] = s.lru.PushFront(ent)
	s.register(ent)
	s.bytes += int64(val.bytes())
}

// advance transitions the cache from one snapshot epoch to the next. aff
// describes what the swap's delta batch may have touched (see invalidate.go);
// nil means "no delta information — flush everything". With aff non-nil,
// entries of fromEpoch survive the swap re-keyed to toEpoch — preserving
// their LRU position, byte accounting, and reverse-index registrations —
// unless the batch doomed them: their target lies inside the radius-expanded
// touched set, or their dependency closure contains a raw delta endpoint.
// Everything else (doomed entries plus residue of even older epochs) is
// removed on the spot, so stats stop counting dead entries the moment they
// become unusable instead of waiting for LRU pressure.
//
// Each shard is processed atomically under its own lock: the doom decision
// and the sweep must not be separated, or a concurrent put of an affected
// target at fromEpoch could slip in between and be wrongly retained. A put
// at toEpoch racing ahead of the sweep is fine — it was computed from the
// new snapState — and on a re-key collision with such an entry the fresh
// one wins.
func (c *vectorCache) advance(fromEpoch, toEpoch uint64, aff *affectedSet) {
	var retained, invalidated uint64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var doomed map[int]struct{}
		if aff != nil && s.rev != nil {
			// Targets whose closure holds a delta endpoint. Iterating the
			// (small) endpoint set keeps this O(|seeds| + hits), not
			// O(entries).
			for node := range aff.seeds {
				for _, t := range s.rev[node] {
					if doomed == nil {
						doomed = make(map[int]struct{})
					}
					doomed[t] = struct{}{}
				}
			}
		}
		var rekey, drop []*list.Element
		for key, el := range s.entries {
			if key.epoch == toEpoch {
				continue
			}
			keep := aff != nil && key.epoch == fromEpoch
			if keep {
				if _, ok := doomed[key.target]; ok {
					keep = false
				} else if _, ok := aff.touched[int32(key.target)]; ok {
					keep = false
				}
			}
			if keep {
				rekey = append(rekey, el)
			} else {
				drop = append(drop, el)
			}
		}
		for _, el := range drop {
			delete(s.entries, el.Value.(*cacheEntry).key)
			s.detach(el)
			invalidated++
		}
		for _, el := range rekey {
			ent := el.Value.(*cacheEntry)
			delete(s.entries, ent.key)
			ent.key.epoch = toEpoch
			if _, exists := s.entries[ent.key]; exists {
				// A fresh compute for the same target raced in at toEpoch.
				// Both are bit-identical by the retention invariant; keep the
				// incumbent and drop the carried copy.
				s.detach(el)
				invalidated++
				continue
			}
			s.entries[ent.key] = el
			retained++
		}
		s.mu.Unlock()
	}
	c.retained.Add(retained)
	c.invalidated.Add(invalidated)
}

// stats gathers a point-in-time snapshot across all shards.
func (c *vectorCache) stats() CacheStats {
	st := CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Capacity:    c.cap,
		Retained:    c.retained.Load(),
		Invalidated: c.invalidated.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.lru.Len()
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
