package socialrec

import (
	"fmt"
	"math/rand"
	"slices"

	"socialrec/internal/distribution"
	"socialrec/internal/mechanism"
)

// RecommendTopK returns k distinct private recommendations for the target,
// ordered by decreasing (internal) utility. The privacy cost of the whole
// set is the Recommender's ε:
//
//   - MechanismLaplace noises the utility vector once and releases the top
//     k of the noisy scores (one ε-DP histogram release + post-processing).
//   - MechanismExponential peels k sequential draws at ε/k each (sequential
//     composition).
//   - MechanismSmoothing mixes k uniform/top draws; by composition the set
//     costs k·ln(1+nx/(1-x)), so the per-construction x is derated to ε/k.
//   - MechanismNone returns the exact top k (no privacy).
//
// Every arm runs over the sparse utility form: the zero tail is sampled in
// closed form (mechanism.TopKLaplaceSparse, TopKPeelSparse), so a k-set
// costs O(nnz + k) instead of O(n) per release.
//
// The paper's Appendix A observes that multiple recommendations face
// strictly harsher accuracy limits than single ones; expect noticeably
// worse per-set accuracy as k grows.
func (r *Recommender) RecommendTopK(target, k int) ([]Recommendation, error) {
	return r.recommendTopK(target, k, distribution.SplitN(r.seed, "topk", target*1048576+k))
}

// RecommendTopKWithRNG is RecommendTopK with caller-supplied randomness.
func (r *Recommender) RecommendTopKWithRNG(target, k int, rng *rand.Rand) ([]Recommendation, error) {
	return r.recommendTopK(target, k, rng)
}

func (r *Recommender) recommendTopK(target, k int, rng *rand.Rand) ([]Recommendation, error) {
	st := r.state.Load()
	if out, ok, err := r.recommendTopKStreaming(st, target, k, rng); ok {
		return out, err
	}
	cv, err := r.vector(st, target)
	if err != nil {
		return nil, err
	}
	if k < 1 || k > cv.ncand {
		return nil, fmt.Errorf("socialrec: k=%d outside [1, %d] for node %d", k, cv.ncand, target)
	}

	var picks []mechanism.Pick
	switch r.kind {
	case MechanismLaplace:
		picks, err = mechanism.TopKLaplaceSparse(r.epsilon, st.sens, cv.sparseVec(), k, rng)
	case MechanismExponential:
		picks, err = mechanism.TopKPeelSparse(r.epsilon, st.sens, cv.sparseVec(), k, rng)
	case MechanismSmoothing:
		picks, err = r.smoothingTopK(cv, k, rng)
	default: // MechanismNone
		picks = bestTopK(cv, k)
	}
	if err != nil {
		return nil, err
	}

	out := make([]Recommendation, len(picks))
	for i, p := range picks {
		node, util := cv.resolve(p)
		out[i] = Recommendation{Target: target, Node: node, Utility: util, MaxUtility: cv.umax}
	}
	slices.SortStableFunc(out, func(a, b Recommendation) int {
		switch {
		case a.Utility > b.Utility:
			return -1
		case a.Utility < b.Utility:
			return 1
		default:
			return 0
		}
	})
	return out, nil
}

// bestTopK is the non-private exact top k over the sparse form: the largest
// support entries (ties toward the lower node ID, as a stable descending
// sort of the dense vector would order them), padded with the
// lowest-ranked zero-tail candidates when k exceeds the support.
func bestTopK(cv *cachedVector, k int) []mechanism.Pick {
	picks := make([]mechanism.Pick, 0, k)
	ks := min(k, len(cv.val))
	if ks > 0 {
		for _, i := range mechanism.TopIndices(cv.val, ks) {
			picks = append(picks, mechanism.Pick{Support: i})
		}
	}
	for rank := 0; len(picks) < k; rank++ {
		picks = append(picks, mechanism.TailPick(rank))
	}
	return picks
}

// smoothingTopK draws k distinct candidates from A_S(x') without
// replacement, where x' is derated so that k-fold composition stays within
// the Recommender's ε. It computes the closed-form A_S(x') probabilities
// once and then draws from the distribution renormalized over the
// not-yet-chosen candidates — exactly the conditional law a rejection loop
// would converge to — in guaranteed O(k·nnz): the zero tail's candidates
// are exchangeable and share one probability, so the tail needs a mass
// comparison plus a uniform rank, never an O(n) scan.
func (r *Recommender) smoothingTopK(cv *cachedVector, k int, rng *rand.Rand) ([]mechanism.Pick, error) {
	x, err := mechanism.SmoothingXForEpsilon(r.epsilon/float64(k), cv.ncand)
	if err != nil {
		return nil, err
	}
	s := mechanism.Smoothing{X: x, Base: mechanism.Best{}}
	support, tailEach, err := s.ProbabilitiesSparse(cv.sparseVec())
	if err != nil {
		return nil, err
	}

	chosen := newBitset(len(support))
	var taken mechanism.TailTracker
	m := cv.ncand - len(support) // tail candidates still unchosen
	remaining := 1.0             // total probability mass of the unchosen candidates
	picks := make([]mechanism.Pick, 0, k)
	for len(picks) < k {
		t := rng.Float64() * remaining
		supportPick := -1
		var acc float64
		for i, pi := range support {
			if chosen.has(i) {
				continue
			}
			supportPick = i
			acc += pi
			if t < acc {
				break
			}
		}
		if (t >= acc || supportPick < 0) && m > 0 {
			// The draw landed in the tail mass (or no unchosen support
			// remains): a uniform rank picks among the exchangeable
			// zero-utility candidates.
			rank := int((t - acc) / tailEach)
			if rank >= m {
				rank = m - 1 // rounding falls through to the last tail slot
			}
			if rank < 0 {
				rank = 0
			}
			picks = append(picks, mechanism.TailPick(taken.Take(rank)))
			m--
			remaining -= tailEach
			continue
		}
		// supportPick falls through to the last unchosen support candidate
		// when floating-point rounding leaves t marginally above the
		// accumulated mass.
		chosen.set(supportPick)
		remaining -= support[supportPick]
		picks = append(picks, mechanism.Pick{Support: supportPick})
	}
	return picks, nil
}

// bitset is a dense bit vector used to mark already-chosen candidates.
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
