package socialrec

import (
	"fmt"
	"math/rand"
	"sort"

	"socialrec/internal/distribution"
	"socialrec/internal/mechanism"
)

// RecommendTopK returns k distinct private recommendations for the target,
// ordered by decreasing (internal) utility. The privacy cost of the whole
// set is the Recommender's ε:
//
//   - MechanismLaplace noises the utility vector once and releases the top
//     k of the noisy scores (one ε-DP histogram release + post-processing).
//   - MechanismExponential peels k sequential draws at ε/k each (sequential
//     composition).
//   - MechanismSmoothing mixes k uniform/top draws; by composition the set
//     costs k·ln(1+nx/(1-x)), so the per-construction x is derated to ε/k.
//   - MechanismNone returns the exact top k (no privacy).
//
// The paper's Appendix A observes that multiple recommendations face
// strictly harsher accuracy limits than single ones; expect noticeably
// worse per-set accuracy as k grows.
func (r *Recommender) RecommendTopK(target, k int) ([]Recommendation, error) {
	return r.recommendTopK(target, k, distribution.Split(r.seed, fmt.Sprintf("topk/%d/%d", target, k)))
}

// RecommendTopKWithRNG is RecommendTopK with caller-supplied randomness.
func (r *Recommender) RecommendTopKWithRNG(target, k int, rng *rand.Rand) ([]Recommendation, error) {
	return r.recommendTopK(target, k, rng)
}

func (r *Recommender) recommendTopK(target, k int, rng *rand.Rand) ([]Recommendation, error) {
	vec, candidates, umax, err := r.vector(target)
	if err != nil {
		return nil, err
	}
	if k < 1 || k > len(vec) {
		return nil, fmt.Errorf("socialrec: k=%d outside [1, %d] for node %d", k, len(vec), target)
	}

	var picked []int
	switch r.kind {
	case MechanismLaplace:
		picked, err = mechanism.TopKLaplace(r.epsilon, r.sens, vec, k, rng)
	case MechanismExponential:
		picked, err = mechanism.TopKPeel(r.epsilon, r.sens, vec, k, rng)
	case MechanismSmoothing:
		picked, err = r.smoothingTopK(vec, k, rng)
	default: // MechanismNone
		picked, err = exactTopK(vec, k)
	}
	if err != nil {
		return nil, err
	}

	out := make([]Recommendation, len(picked))
	for i, idx := range picked {
		out[i] = Recommendation{Target: target, Node: candidates[idx], Utility: vec[idx], MaxUtility: umax}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Utility > out[j].Utility })
	return out, nil
}

// smoothingTopK draws k distinct candidates from A_S(x') without
// replacement, where x' is derated so that k-fold composition stays within
// the Recommender's ε.
func (r *Recommender) smoothingTopK(vec []float64, k int, rng *rand.Rand) ([]int, error) {
	x, err := mechanism.SmoothingXForEpsilon(r.epsilon/float64(k), len(vec))
	if err != nil {
		return nil, err
	}
	s := mechanism.Smoothing{X: x, Base: mechanism.Best{}}
	chosen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		idx, err := s.Recommend(vec, rng)
		if err != nil {
			return nil, err
		}
		if chosen[idx] {
			continue // rejection: draw again until distinct
		}
		chosen[idx] = true
		out = append(out, idx)
	}
	return out, nil
}

func exactTopK(vec []float64, k int) ([]int, error) {
	idx := make([]int, len(vec))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vec[idx[a]] > vec[idx[b]] })
	return idx[:k], nil
}
