package socialrec

import (
	"fmt"
	"math/rand"
	"slices"

	"socialrec/internal/distribution"
	"socialrec/internal/mechanism"
)

// RecommendTopK returns k distinct private recommendations for the target,
// ordered by decreasing (internal) utility. The privacy cost of the whole
// set is the Recommender's ε:
//
//   - MechanismLaplace noises the utility vector once and releases the top
//     k of the noisy scores (one ε-DP histogram release + post-processing).
//   - MechanismExponential peels k sequential draws at ε/k each (sequential
//     composition).
//   - MechanismSmoothing mixes k uniform/top draws; by composition the set
//     costs k·ln(1+nx/(1-x)), so the per-construction x is derated to ε/k.
//   - MechanismNone returns the exact top k (no privacy).
//
// The paper's Appendix A observes that multiple recommendations face
// strictly harsher accuracy limits than single ones; expect noticeably
// worse per-set accuracy as k grows.
func (r *Recommender) RecommendTopK(target, k int) ([]Recommendation, error) {
	return r.recommendTopK(target, k, distribution.SplitN(r.seed, "topk", target*1048576+k))
}

// RecommendTopKWithRNG is RecommendTopK with caller-supplied randomness.
func (r *Recommender) RecommendTopKWithRNG(target, k int, rng *rand.Rand) ([]Recommendation, error) {
	return r.recommendTopK(target, k, rng)
}

func (r *Recommender) recommendTopK(target, k int, rng *rand.Rand) ([]Recommendation, error) {
	st := r.state.Load()
	cv, err := r.vector(st, target)
	if err != nil {
		return nil, err
	}
	vec, candidates, umax := cv.vec, cv.candidates, cv.umax
	if k < 1 || k > len(vec) {
		return nil, fmt.Errorf("socialrec: k=%d outside [1, %d] for node %d", k, len(vec), target)
	}

	var picked []int
	switch r.kind {
	case MechanismLaplace:
		picked, err = mechanism.TopKLaplace(r.epsilon, st.sens, vec, k, rng)
	case MechanismExponential:
		picked, err = mechanism.TopKPeel(r.epsilon, st.sens, vec, k, rng)
	case MechanismSmoothing:
		picked, err = r.smoothingTopK(vec, k, rng)
	default: // MechanismNone
		picked = mechanism.TopIndices(vec, k)
	}
	if err != nil {
		return nil, err
	}

	out := make([]Recommendation, len(picked))
	for i, idx := range picked {
		out[i] = Recommendation{Target: target, Node: candidates[idx], Utility: vec[idx], MaxUtility: umax}
	}
	slices.SortStableFunc(out, func(a, b Recommendation) int {
		switch {
		case a.Utility > b.Utility:
			return -1
		case a.Utility < b.Utility:
			return 1
		default:
			return 0
		}
	})
	return out, nil
}

// smoothingTopK draws k distinct candidates from A_S(x') without
// replacement, where x' is derated so that k-fold composition stays within
// the Recommender's ε. Instead of rejection-sampling until k distinct
// candidates appear — whose worst case is unbounded when the smoothing
// distribution concentrates on few winners — it computes the closed-form
// A_S(x') probabilities once and then draws from the distribution
// renormalized over the not-yet-chosen candidates, which is exactly the
// conditional law the rejection loop converges to, in guaranteed O(k·n).
func (r *Recommender) smoothingTopK(vec []float64, k int, rng *rand.Rand) ([]int, error) {
	x, err := mechanism.SmoothingXForEpsilon(r.epsilon/float64(k), len(vec))
	if err != nil {
		return nil, err
	}
	s := mechanism.Smoothing{X: x, Base: mechanism.Best{}}
	p, err := s.Probabilities(vec)
	if err != nil {
		return nil, err
	}

	chosen := newBitset(len(p))
	remaining := 1.0 // total probability mass of the unchosen candidates
	out := make([]int, 0, k)
	for len(out) < k {
		t := rng.Float64() * remaining
		pick := -1
		var acc float64
		for i, pi := range p {
			if chosen.has(i) {
				continue
			}
			pick = i
			acc += pi
			if t < acc {
				break
			}
		}
		// pick falls through to the last unchosen candidate when floating
		// point rounding leaves t marginally above the accumulated mass.
		chosen.set(pick)
		remaining -= p[pick]
		out = append(out, pick)
	}
	return out, nil
}

// bitset is a dense bit vector used to mark already-chosen candidates.
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
