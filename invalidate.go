package socialrec

import (
	"socialrec/internal/graph"
	"socialrec/internal/utility"
)

// Delta-aware cache invalidation: a snapshot swap used to orphan every
// cached utility vector by bumping the epoch, so a live graph under steady
// mutation traffic served almost entirely uncached. But the serving
// utilities are local — a CommonNeighbors vector depends only on the 2-hop
// out-ball of its target — so a small delta batch provably cannot touch the
// vast majority of cached targets. This file computes, for one drained
// batch, a conservative superset of the targets whose entries could differ
// on the new snapshot; vectorCache.advance then re-keys every other entry
// to the new epoch untouched.
//
// Correctness rests on the utility.Localized contract: with declared radius
// ρ, the entry for target r is a pure function of r's ρ-hop out-ball (rows
// at out-distance < ρ, degrees at distance <= ρ). Comparing the pre-patch
// graph G and the post-patch graph G', the entry can differ only if some
// edge of the symmetric difference — a subset of the batch's edge deltas —
// intersects that ball in G or in G'. Contrapositive: if no delta endpoint
// is within ρ out-hops of r in either graph, the ball subgraphs are
// identical edge-for-edge and the recomputed entry — idx, val, umax, skip,
// and (given an unchanged candidate count, Δf, and smoothing x) the CDF —
// is bit-identical, because the kernels are deterministic scans of exactly
// that ball. So the affected set is the reverse ρ-hop ball of the delta
// endpoints, grown by following in-edges on BOTH stores: an edge add can
// pull a node into a support that was previously empty (the new store's
// in-edges find it), and an edge removal can orphan one (the old store's
// in-edges find it).
//
// Two conditions void the ball argument entirely and force a full flush:
// node additions (the candidate count n-1-d(r) of EVERY target changes, and
// ncand is baked into each entry's tail ranks), and any change to the
// state-wide Δf or smoothing x (baked into each entry's CDF weights).
//
// DP-safety of retention: a cached entry is pure pre-noise state — raw
// utilities, never released. Retention only ever serves an entry that is
// bit-identical to what a cache miss would recompute from the new snapshot,
// so the mechanism's output distribution — and therefore the ε guarantee —
// is exactly that of an uncached Recommender over the new graph. The
// privacy-bearing noise is still drawn fresh per request; no randomness and
// no released output ever crosses a snapshot boundary.

// affectedSet is what one drained delta batch may have touched, handed to
// vectorCache.advance at swap time.
type affectedSet struct {
	// seeds are the raw endpoints of the batch's edge deltas. advance dooms
	// every target whose registered dependency closure contains one: the
	// closure (skip = target ∪ out-neighbors ∪ support) spans the declared
	// radius, so this is the precise "did the batch touch my ball" test for
	// entries whose registration is current.
	seeds map[int32]struct{}
	// touched is seeds expanded by radius reverse-BFS hops over the union
	// of the pre- and post-patch adjacency. advance dooms every target in
	// it, covering entries whose support the batch created from nothing —
	// an empty closure registers almost nothing, so the closure test alone
	// would miss them.
	touched map[int32]struct{}
}

// retentionRadius returns the serving utility's declared invalidation
// radius, or 0 when the cache must fall back to full flushes (utility not
// Localized, or delta invalidation not enabled).
func (r *Recommender) retentionRadius() int {
	if !r.deltaInval {
		return 0
	}
	lu, ok := r.util.(utility.Localized)
	if !ok {
		return 0
	}
	if rad := lu.InvalidationRadius(); rad > 0 {
		return rad
	}
	return 0
}

// affectedByBatch computes the affectedSet for one drained batch, or nil
// when the swap must flush everything:
//
//   - delta invalidation disabled, or the utility declares no radius;
//   - basisLost: a previous rebuild drained deltas but failed to install a
//     snapshot, so this batch is not the complete diff between cur and next;
//   - the batch adds a node (every entry's candidate count changes);
//   - Δf or the smoothing x changed across the swap (baked into CDFs).
func (r *Recommender) affectedByBatch(cur, next *snapState, deltas []graph.Delta, basisLost bool) *affectedSet {
	radius := r.retentionRadius()
	if radius == 0 || basisLost {
		return nil
	}
	if next.sens != cur.sens || next.x != cur.x {
		return nil
	}
	for _, d := range deltas {
		if d.Op == graph.DeltaAddNode {
			return nil
		}
	}
	aff := &affectedSet{
		seeds:   make(map[int32]struct{}, 2*len(deltas)),
		touched: make(map[int32]struct{}, 8*len(deltas)),
	}
	frontier := make([]int32, 0, 2*len(deltas))
	mark := func(v int32) {
		if _, ok := aff.touched[v]; !ok {
			aff.touched[v] = struct{}{}
			frontier = append(frontier, v)
		}
	}
	for _, d := range deltas {
		mark(int32(d.From))
		mark(int32(d.To))
	}
	for v := range aff.touched {
		aff.seeds[v] = struct{}{}
	}
	// Reverse BFS: a target is affected when a seed lies within radius
	// out-hops of it, so the touched set is grown by following in-edges
	// from the seeds. Expanding over both stores at every level covers any
	// mix of pre-only and post-only edges — a superset of the two per-graph
	// balls, conservative in the right direction. (On undirected graphs
	// In == Out and this is the plain neighborhood ball.)
	stores := [2]graph.Store{cur.snap, next.snap}
	for hop := 0; hop < radius && len(frontier) > 0; hop++ {
		level := frontier
		frontier = nil
		for _, v := range level {
			for _, st := range stores {
				if int(v) >= st.NumNodes() {
					continue
				}
				for _, u := range st.In(int(v)) {
					mark(u)
				}
			}
		}
	}
	return aff
}
