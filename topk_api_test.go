package socialrec

import (
	"errors"
	"testing"

	"socialrec/internal/distribution"
)

func topKGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := GenerateSocialGraph(200, 1200, 21)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// pickTarget returns a node with enough candidates for top-k tests.
func pickTarget(t *testing.T, g *Graph) int {
	t.Helper()
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(v) >= 3 && len(g.TwoHopNeighborhood(v)) >= 5 {
			return v
		}
	}
	t.Fatal("no suitable target")
	return -1
}

func TestRecommendTopKAllMechanisms(t *testing.T) {
	g := topKGraph(t)
	target := pickTarget(t, g)
	for _, kind := range []MechanismKind{MechanismExponential, MechanismLaplace, MechanismSmoothing, MechanismNone} {
		r, err := NewRecommender(g, WithMechanism(kind), WithSeed(4), WithEpsilon(2))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		recs, err := r.RecommendTopK(target, 4)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(recs) != 4 {
			t.Fatalf("%v: got %d recommendations", kind, len(recs))
		}
		seen := map[int]bool{}
		for i, rec := range recs {
			if rec.Target != target {
				t.Errorf("%v: target %d", kind, rec.Target)
			}
			if rec.Node == target || g.HasEdge(target, rec.Node) {
				t.Errorf("%v: recommended self or existing neighbor %d", kind, rec.Node)
			}
			if seen[rec.Node] {
				t.Errorf("%v: duplicate node %d", kind, rec.Node)
			}
			seen[rec.Node] = true
			if i > 0 && recs[i-1].Utility < rec.Utility {
				t.Errorf("%v: results not sorted by utility", kind)
			}
		}
	}
}

func TestRecommendTopKNonPrivateIsExact(t *testing.T) {
	g := topKGraph(t)
	target := pickTarget(t, g)
	r, err := NewRecommender(g, NonPrivate())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.RecommendTopK(target, 3)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Utility != recs[0].MaxUtility {
		t.Errorf("first pick should be the max: %+v", recs[0])
	}
}

func TestRecommendTopKValidation(t *testing.T) {
	g := topKGraph(t)
	target := pickTarget(t, g)
	r, err := NewRecommender(g, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RecommendTopK(target, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := r.RecommendTopK(target, g.NumNodes()+5); err == nil {
		t.Error("huge k accepted")
	}
	if _, err := r.RecommendTopK(-1, 2); !errors.Is(err, ErrBadTarget) {
		t.Error("bad target accepted")
	}
}

func TestRecommendTopKDeterministic(t *testing.T) {
	g := topKGraph(t)
	target := pickTarget(t, g)
	r, err := NewRecommender(g, WithSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.RecommendTopK(target, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RecommendTopK(target, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic: %v vs %v", a, b)
		}
	}
}

func TestRecommendTopKWithRNG(t *testing.T) {
	g := topKGraph(t)
	target := pickTarget(t, g)
	r, err := NewRecommender(g, WithEpsilon(5))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.RecommendTopKWithRNG(target, 2, distribution.NewRNG(3))
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
}

// TestRecommenderConcurrentUse exercises the documented concurrency safety
// of a constructed Recommender under the race detector.
func TestRecommenderConcurrentUse(t *testing.T) {
	g := topKGraph(t)
	r, err := NewRecommender(g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		w := w
		go func() {
			for target := w; target < g.NumNodes(); target += 8 {
				if _, err := r.Recommend(target); err != nil &&
					!errors.Is(err, ErrNoCandidates) {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
