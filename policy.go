package socialrec

import (
	"fmt"

	"socialrec/internal/bounds"
	"socialrec/internal/utility"
)

// EdgePolicy marks which (potential) edges of the graph are sensitive. It
// is consulted for absent edges too, because the impossibility argument
// reasons about edges an attacker could imagine adding.
type EdgePolicy = bounds.EdgePolicy

// SensitiveCeiling is the result of a partially-sensitive privacy audit
// for one target (the §8 extension of the paper: "only certain edges are
// sensitive").
type SensitiveCeiling struct {
	// Bounded reports whether privacy imposes any accuracy ceiling at all.
	// When false, every rewiring that could promote a worthless candidate
	// necessarily flips a public edge, the impossibility argument does not
	// apply, and accurate recommendations may be privately feasible for
	// this target.
	Bounded bool
	// Ceiling is the Corollary 1 accuracy upper bound (1 when unbounded).
	Ceiling float64
	// SensitiveEdits is the number of sensitive edge alterations in the
	// cheapest promotion (the t of the bound; 0 when unbounded).
	SensitiveEdits int
}

// AccuracyCeilingWithPolicy evaluates the accuracy ceiling when only the
// edges selected by policy are sensitive — for example, person-product
// purchase links private while person-person friendships are public. It is
// only defined for the common-neighbors utility (the paper's running
// example); other utilities return an error.
//
// A nil policy means every edge is sensitive, which reduces to
// AccuracyCeiling's model.
func (r *Recommender) AccuracyCeilingWithPolicy(target int, policy EdgePolicy) (SensitiveCeiling, error) {
	if _, ok := r.util.(utility.CommonNeighbors); !ok {
		return SensitiveCeiling{}, fmt.Errorf("socialrec: sensitive-edge ceilings are defined for the common-neighbors utility, not %s", r.util.Name())
	}
	res, err := bounds.SensitiveCommonNeighborsCeiling(r.state.Load().snap, target, r.epsilon, policy)
	if err != nil {
		return SensitiveCeiling{}, err
	}
	return SensitiveCeiling{Bounded: res.Bounded, Ceiling: res.Ceiling, SensitiveEdits: res.T}, nil
}
