package socialrec

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"socialrec/internal/gen"
)

// These tests pin the DP-safety contract of request coalescing (see doc.go):
// the coalescer shares only the deterministic pre-noise stage, so (a) the
// output distribution under heavy concurrent coalescing is the same as the
// sequential uncoalesced mechanism's, and (b) when no concurrency exists —
// every group a singleton — the served bytes are identical to the
// uncoalesced path under fixed seeds.

// coalesceTestTarget finds a serveable target with a small nonzero support
// (chunky chi-squared cells) on the given recommender.
func coalesceTestTarget(t *testing.T, rec *Recommender) (int, *cachedVector) {
	t.Helper()
	st := rec.state.Load()
	for cand := 0; cand < st.snap.NumNodes(); cand++ {
		v, err := rec.vector(st, cand)
		if err != nil {
			continue
		}
		if len(v.idx) >= 2 && len(v.idx) <= 6 && v.ncand > len(v.idx) {
			return cand, v
		}
	}
	t.Fatal("no target with a small support found")
	return -1, nil
}

// TestCoalescedDrawsIndependentGOF: many goroutines hammer one target
// through a coalesced recommender, each request drawing from its own
// RequestRNG stream — so nearly every draw rides on a shared group
// computation. The empirical recommendation distribution must match a
// sequential, uncoalesced recommender's (two-sample chi-squared): sharing
// the pre-noise stage must not correlate or shift the noise draws.
func TestCoalescedDrawsIndependentGOF(t *testing.T) {
	crit := map[int]float64{ // alpha = 1e-3
		2: 13.816, 3: 16.266, 4: 18.467, 5: 20.515, 6: 22.458, 7: 24.322, 8: 26.124,
	}
	g, err := gen.PowerLawConfiguration(150, 220, 1, 1.2, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	coalesced, err := NewRecommender(g, WithEpsilon(1), WithSeed(4),
		WithCoalescing(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer coalesced.Close()
	target, cv := coalesceTestTarget(t, coalesced)
	cellOf := func(node int) int {
		for i, id := range cv.idx {
			if int(id) == node {
				return i
			}
		}
		return len(cv.idx) // the zero-utility tail
	}
	cells := len(cv.idx) + 1

	const trials = 60000
	const workers = 16
	concurrent := make([]int, cells)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int, cells)
			for i := 0; i < trials/workers; i++ {
				recd, err := coalesced.RecommendWithRNG(target, coalesced.RequestRNG())
				if err != nil {
					t.Error(err)
					return
				}
				local[cellOf(recd.Node)]++
			}
			mu.Lock()
			for i, n := range local {
				concurrent[i] += n
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if st, ok := coalesced.CoalesceStats(); !ok || st.Shared == 0 {
		t.Fatalf("workload never coalesced (stats %+v, ok=%v) — the test would prove nothing", st, ok)
	}

	plain, err := NewRecommender(g, WithEpsilon(1), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	sequential := make([]int, cells)
	rng := rand.New(rand.NewSource(202))
	for i := 0; i < trials; i++ {
		recd, err := plain.RecommendWithRNG(target, rng)
		if err != nil {
			t.Fatal(err)
		}
		sequential[cellOf(recd.Node)]++
	}

	stat := 0.0
	for i := range concurrent {
		n := float64(concurrent[i] + sequential[i])
		if n == 0 {
			continue
		}
		d := float64(concurrent[i] - sequential[i])
		stat += d * d / n
	}
	c, ok := crit[cells-1]
	if !ok {
		t.Fatalf("no critical value for df=%d", cells-1)
	}
	if stat > c {
		t.Fatalf("target %d: coalesced concurrent draws diverge from sequential: chi-squared %.3f > %.3f\nconcurrent: %v\nsequential: %v",
			target, stat, c, concurrent, sequential)
	}
}

// TestCoalescingSingletonBitIdentical: with no concurrency every group is a
// singleton, and a coalesced recommender must serve exactly the bytes the
// uncoalesced one does under the same seed — Recommend, RecommendTopK, and
// the explicit-RNG variants alike. This is the "coalescing is pure
// pre-processing" half of the DP argument made executable.
func TestCoalescingSingletonBitIdentical(t *testing.T) {
	g, err := gen.PowerLawConfiguration(300, 900, 1, 1.2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewRecommender(g, WithEpsilon(1), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	coalesced, err := NewRecommender(g, WithEpsilon(1), WithSeed(8),
		WithCoalescing(time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer coalesced.Close()

	checked := 0
	for target := 0; target < g.NumNodes() && checked < 25; target++ {
		a, errA := plain.Recommend(target)
		b, errB := coalesced.Recommend(target)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("target %d: plain err %v, coalesced err %v", target, errA, errB)
		}
		if errA != nil {
			continue
		}
		checked++
		if a != b {
			t.Errorf("target %d: Recommend plain %+v != coalesced %+v", target, a, b)
		}
		ka, errA := plain.RecommendTopK(target, 3)
		kb, errB := coalesced.RecommendTopK(target, 3)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("target %d: topk plain err %v, coalesced err %v", target, errA, errB)
		}
		if errA == nil {
			if len(ka) != len(kb) {
				t.Fatalf("target %d: topk lengths %d vs %d", target, len(ka), len(kb))
			}
			for i := range ka {
				if ka[i] != kb[i] {
					t.Errorf("target %d rank %d: topk plain %+v != coalesced %+v", target, i, ka[i], kb[i])
				}
			}
		}
		// The explicit-RNG path (what the HTTP layer uses via RequestRNG):
		// identical streams must yield identical draws.
		ra, errA := plain.RecommendWithRNG(target, rand.New(rand.NewSource(int64(target))))
		rb, errB := coalesced.RecommendWithRNG(target, rand.New(rand.NewSource(int64(target))))
		if errA != nil || errB != nil {
			t.Fatalf("target %d: withRNG errs %v / %v", target, errA, errB)
		}
		if ra != rb {
			t.Errorf("target %d: WithRNG plain %+v != coalesced %+v", target, ra, rb)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d serveable targets checked", checked)
	}
	if st, ok := coalesced.CoalesceStats(); !ok || st.Shared != 0 || st.Groups == 0 {
		t.Fatalf("sequential workload should form only singleton groups, got %+v (ok=%v)", st, ok)
	}
}

// TestPrecomputeRoutesThroughCoalescer: cache warming goes through the same
// shared-computation path as serving (DoNow — no deadline wait), so warmed
// targets land in the cache and show up in the coalescer's counters, and
// subsequent serving hits the cache without recomputing.
func TestPrecomputeRoutesThroughCoalescer(t *testing.T) {
	g, err := gen.PowerLawConfiguration(300, 900, 1, 1.2, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(1),
		WithCache(256), WithCoalescing(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	targets := []int{0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3} // duplicates dedup before warming
	warmed := rec.Precompute(targets)
	if warmed != 8 {
		t.Fatalf("warmed %d targets, want 8", warmed)
	}
	st, ok := rec.CoalesceStats()
	if !ok {
		t.Fatal("coalescing not enabled")
	}
	if st.Requests < 8 || st.Groups < 8 {
		t.Fatalf("warming bypassed the coalescer: %+v", st)
	}
	// Precompute must not have paid the deadline window per target: 8
	// sequential 1ms waits would be visible; DoNow waits for none. Proxy
	// check: re-warming is a no-op (cache contains the entries)...
	if again := rec.Precompute(targets); again != 8 {
		t.Fatalf("re-warm reported %d targets, want 8 (cached)", again)
	}
	if st2, _ := rec.CoalesceStats(); st2.Requests != st.Requests {
		t.Fatalf("re-warm of cached targets recomputed: %+v -> %+v", st, st2)
	}
	// ...and serving the warmed targets is all cache hits.
	cs, _ := rec.CacheStats()
	for _, target := range targets {
		if _, err := rec.Recommend(target); err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
	}
	cs2, _ := rec.CacheStats()
	if cs2.Misses != cs.Misses {
		t.Fatalf("serving warmed targets missed the cache: %d -> %d misses", cs.Misses, cs2.Misses)
	}
}
