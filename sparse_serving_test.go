package socialrec

// Property tests that the sparse serving pipeline (sparse kernels + sparse
// mechanism draws + tail-rank mapping) is distribution-identical to the
// dense reference pipeline (dense vector -> candidate list -> compact
// vector -> dense mechanism) across every utility, mechanism, and
// directedness: exact per-candidate probabilities for the closed-form
// mechanisms (Exponential, Smoothing, Best), a seeded two-sample chi-squared
// for Laplace (which has no closed form), and fixed-seed bit-identity where
// the draw structure coincides (no zero tail).

import (
	"math"
	"math/rand"
	"testing"

	"socialrec/internal/gen"
	"socialrec/internal/mechanism"
	"socialrec/internal/utility"
)

func servingTestGraph(t *testing.T, directed bool, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n, m := 90, 360
	var g *Graph
	var err error
	if directed {
		g, err = gen.DirectedPreferentialAttachment(n, m, 10, 2.0, rng)
	} else {
		g, err = gen.PowerLawConfiguration(n, m, 1, 1.2, rng)
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func servingUtilities() []UtilityFunction {
	return []UtilityFunction{
		utility.CommonNeighbors{},
		utility.WeightedPaths{Gamma: 0.05},
		utility.PageRank{},
		utility.Degree{},
		utility.Jaccard{},
	}
}

// denseServingProbs computes the reference per-node recommendation
// probabilities through the dense pipeline the serving layer used before
// sparsification.
func denseServingProbs(t *testing.T, g *Graph, u UtilityFunction, d mechanism.Distribution, target int) map[int]float64 {
	t.Helper()
	snap := g.Snapshot()
	full, err := u.Vector(snap, target)
	if err != nil {
		t.Fatal(err)
	}
	candidates := utility.Candidates(snap, target)
	vec := utility.Compact(full, candidates)
	if utility.Max(vec) == 0 {
		return nil
	}
	p, err := d.Probabilities(vec)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int]float64, len(candidates))
	for i, c := range candidates {
		out[c] = p[i]
	}
	return out
}

// sparseServingProbs reads the serving layer's cached sparse form and
// expands its closed-form probabilities to per-node values.
func sparseServingProbs(t *testing.T, r *Recommender, sd mechanism.SparseDistribution, target int) map[int]float64 {
	t.Helper()
	st := r.state.Load()
	cv, err := r.vector(st, target)
	if err != nil {
		return nil
	}
	support, tailEach, err := sd.ProbabilitiesSparse(cv.sparseVec())
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int]float64, cv.ncand)
	for i, node := range cv.idx {
		out[int(node)] = support[i]
	}
	for rank := 0; rank < cv.ncand-len(cv.idx); rank++ {
		out[complementSelect(cv.skip, rank)] = tailEach
	}
	return out
}

// TestSparseServingMatchesDenseProbabilities is the exact-equivalence arm:
// for every utility x mechanism x directedness, the sparse serving path
// assigns every candidate node the same recommendation probability as the
// dense pipeline (bit-equal for Best/Smoothing, 1 ulp-scale tolerance for
// Exponential whose normalizing sums associate differently).
func TestSparseServingMatchesDenseProbabilities(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := servingTestGraph(t, directed, 41)
		for _, u := range servingUtilities() {
			for _, kind := range []MechanismKind{MechanismExponential, MechanismSmoothing, MechanismNone} {
				rec, err := NewRecommender(g, WithEpsilon(1), WithUtility(u), WithMechanism(kind), WithSeed(1))
				if err != nil {
					t.Fatal(err)
				}
				d, ok := rec.state.Load().mech.(mechanism.Distribution)
				if !ok {
					t.Fatalf("%v has no dense closed form", kind)
				}
				sd, ok := rec.state.Load().mech.(mechanism.SparseDistribution)
				if !ok {
					t.Fatalf("%v has no sparse closed form", kind)
				}
				exact := kind != MechanismExponential
				checked := 0
				for target := 0; target < g.NumNodes() && checked < 12; target++ {
					dense := denseServingProbs(t, g, u, d, target)
					sparse := sparseServingProbs(t, rec, sd, target)
					if dense == nil || sparse == nil {
						if (dense == nil) != (sparse == nil) {
							t.Fatalf("%s/%v target %d: dense nil=%v sparse nil=%v",
								u.Name(), kind, target, dense == nil, sparse == nil)
						}
						continue
					}
					checked++
					if len(dense) != len(sparse) {
						t.Fatalf("%s/%v target %d: candidate domains differ: %d vs %d",
							u.Name(), kind, target, len(dense), len(sparse))
					}
					for node, dp := range dense {
						sp, ok := sparse[node]
						if !ok {
							t.Fatalf("%s/%v target %d: node %d missing from sparse domain", u.Name(), kind, target, node)
						}
						tol := 0.0
						if !exact {
							tol = 1e-12 * (dp + 1)
						}
						if math.Abs(sp-dp) > tol {
							t.Fatalf("%s/%v (directed=%v) target %d node %d: sparse p=%v dense p=%v",
								u.Name(), kind, directed, target, node, sp, dp)
						}
					}
				}
				if checked == 0 {
					t.Fatalf("%s/%v: no serveable targets", u.Name(), kind)
				}
			}
		}
	}
}

// TestSparseServingExpectedAccuracyMatchesDense covers the audit path for
// all utilities and both closed-form mechanisms.
func TestSparseServingExpectedAccuracyMatchesDense(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := servingTestGraph(t, directed, 17)
		snap := g.Snapshot()
		for _, u := range servingUtilities() {
			rec, err := NewRecommender(g, WithEpsilon(0.5), WithUtility(u), WithSeed(2))
			if err != nil {
				t.Fatal(err)
			}
			sens := u.Sensitivity(snap)
			e := mechanism.Exponential{Epsilon: 0.5, Sensitivity: sens}
			checked := 0
			for target := 0; target < g.NumNodes() && checked < 15; target++ {
				acc, err := rec.ExpectedAccuracy(target)
				if err != nil {
					continue
				}
				checked++
				full, err := u.Vector(snap, target)
				if err != nil {
					t.Fatal(err)
				}
				vec := utility.Compact(full, utility.Candidates(snap, target))
				want, err := mechanism.ExpectedAccuracy(e, vec)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(acc-want) > 1e-12 {
					t.Fatalf("%s target %d: sparse accuracy %v vs dense %v", u.Name(), target, acc, want)
				}
				// The ceiling path must agree with the dense bound too.
				ceiling, err := rec.AccuracyCeiling(target)
				if err != nil {
					t.Fatal(err)
				}
				if acc > ceiling+1e-9 {
					t.Fatalf("%s target %d: accuracy %v above ceiling %v", u.Name(), target, acc, ceiling)
				}
			}
			if checked == 0 {
				t.Fatalf("%s: no serveable targets", u.Name())
			}
		}
	}
}

// TestSparseTailMappingBijective: every zero-tail rank must resolve to a
// distinct candidate node outside the support, covering the whole candidate
// domain together with the support.
func TestSparseTailMappingBijective(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := servingTestGraph(t, directed, 5)
		rec, err := NewRecommender(g, WithEpsilon(1), WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		st := rec.state.Load()
		for target := 0; target < 30; target++ {
			cv, err := rec.vector(st, target)
			if err != nil {
				continue
			}
			want := utility.Candidates(st.snap, target)
			seen := make(map[int]bool, cv.ncand)
			for _, node := range cv.idx {
				seen[int(node)] = true
			}
			for rank := 0; rank < cv.ncand-len(cv.idx); rank++ {
				node, u := cv.resolve(mechanism.TailPick(rank))
				if u != 0 {
					t.Fatalf("target %d rank %d: nonzero utility %v", target, rank, u)
				}
				if seen[node] {
					t.Fatalf("target %d rank %d: node %d already covered", target, rank, node)
				}
				seen[node] = true
			}
			if len(seen) != len(want) {
				t.Fatalf("target %d: sparse domain %d nodes, dense %d", target, len(seen), len(want))
			}
			for _, c := range want {
				if !seen[c] {
					t.Fatalf("target %d: candidate %d unreachable from sparse form", target, c)
				}
			}
		}
	}
}

// TestSparseServingLaplaceGOF: Laplace has no closed form, so the sparse
// serving draw (closed-form tail max) is compared against the dense noisy
// argmax with a seeded two-sample chi-squared, per directedness.
func TestSparseServingLaplaceGOF(t *testing.T) {
	crit := map[int]float64{ // alpha = 1e-3
		2: 13.816, 3: 16.266, 4: 18.467, 5: 20.515, 6: 22.458, 7: 24.322, 8: 26.124,
	}
	for _, directed := range []bool{false, true} {
		// A sparser graph than the shared fixture keeps the nonzero support
		// small enough for chunky chi-squared cells.
		rng := rand.New(rand.NewSource(23))
		var g *Graph
		var err error
		if directed {
			g, err = gen.DirectedPreferentialAttachment(150, 220, 6, 2.0, rng)
		} else {
			g, err = gen.PowerLawConfiguration(150, 220, 1, 1.2, rng)
		}
		if err != nil {
			t.Fatal(err)
		}
		rec, err := NewRecommender(g, WithEpsilon(1), WithMechanism(MechanismLaplace), WithSeed(4))
		if err != nil {
			t.Fatal(err)
		}
		st := rec.state.Load()
		// Pick a target with a small nonzero support so cells stay chunky.
		target := -1
		var cv *cachedVector
		for cand := 0; cand < g.NumNodes(); cand++ {
			v, err := rec.vector(st, cand)
			if err != nil {
				continue
			}
			if len(v.idx) >= 2 && len(v.idx) <= 6 && v.ncand > len(v.idx) {
				target, cv = cand, v
				break
			}
		}
		if target < 0 {
			t.Fatal("no target with a small support found")
		}
		snap := g.Snapshot()
		full, verr := rec.util.Vector(snap, target)
		if verr != nil {
			t.Fatal(verr)
		}
		candidates := utility.Candidates(snap, target)
		vec := utility.Compact(full, candidates)
		l := mechanism.Laplace{Epsilon: 1, Sensitivity: st.sens}

		cellOf := func(node int) int {
			for i, id := range cv.idx {
				if int(id) == node {
					return i
				}
			}
			return len(cv.idx)
		}
		const trials = 60000
		cells := len(cv.idx) + 1
		dense := make([]int, cells)
		rng = rand.New(rand.NewSource(101))
		for i := 0; i < trials; i++ {
			idx, err := l.Recommend(vec, rng)
			if err != nil {
				t.Fatal(err)
			}
			dense[cellOf(candidates[idx])]++
		}
		sparse := make([]int, cells)
		rng = rand.New(rand.NewSource(202))
		for i := 0; i < trials; i++ {
			recd, err := rec.RecommendWithRNG(target, rng)
			if err != nil {
				t.Fatal(err)
			}
			sparse[cellOf(recd.Node)]++
		}
		stat := 0.0
		for i := range dense {
			n := float64(dense[i] + sparse[i])
			if n == 0 {
				continue
			}
			d := float64(dense[i] - sparse[i])
			stat += d * d / n
		}
		c, ok := crit[cells-1]
		if !ok {
			t.Fatalf("no critical value for df=%d", cells-1)
		}
		if stat > c {
			t.Fatalf("directed=%v target %d: sparse Laplace serving diverges from dense: chi-squared %.3f > %.3f\ndense:  %v\nsparse: %v",
				directed, target, stat, c, dense, sparse)
		}
	}
}

// TestSparseServingNoTailBitIdentical pins the exact-draw boundary: with
// the degree utility on a graph without isolated nodes every candidate has
// positive utility (no zero tail), and the sparse serving draw consumes the
// same single uniform as the dense CDF inversion — so fixed seeds reproduce
// the dense pipeline's recommendations node-for-node, cached or not.
func TestSparseServingNoTailBitIdentical(t *testing.T) {
	g := servingTestGraph(t, false, 31) // min degree 1: no isolated nodes
	u := utility.Degree{}
	for _, cacheSize := range []int{0, 256} {
		opts := []Option{WithEpsilon(1), WithUtility(u), WithSeed(8)}
		if cacheSize > 0 {
			opts = append(opts, WithCache(cacheSize))
		}
		rec, err := NewRecommender(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		snap := g.Snapshot()
		e := mechanism.Exponential{Epsilon: 1, Sensitivity: u.Sensitivity(snap)}
		for target := 0; target < 25; target++ {
			full, err := u.Vector(snap, target)
			if err != nil {
				t.Fatal(err)
			}
			candidates := utility.Candidates(snap, target)
			vec := utility.Compact(full, candidates)
			cdf, err := e.CDF(vec)
			if err != nil {
				t.Fatal(err)
			}
			denseRNG := rand.New(rand.NewSource(int64(1000 + target)))
			sparseRNG := rand.New(rand.NewSource(int64(1000 + target)))
			for i := 0; i < 50; i++ {
				want := candidates[mechanism.SampleCDF(cdf, denseRNG)]
				got, err := rec.RecommendWithRNG(target, sparseRNG)
				if err != nil {
					t.Fatal(err)
				}
				if got.Node != want {
					t.Fatalf("cache=%d target %d draw %d: sparse node %d, dense node %d",
						cacheSize, target, i, got.Node, want)
				}
			}
		}
	}
}
