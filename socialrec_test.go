package socialrec

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"socialrec/internal/distribution"
)

// demoGraph builds a small friendship graph where node 0's obvious
// suggestion is node 3 (two common neighbors through 1 and 2).
func demoGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNewRecommenderDefaults(t *testing.T) {
	r, err := NewRecommender(demoGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Epsilon() != 1 || r.Mechanism() != MechanismExponential {
		t.Errorf("defaults wrong: eps=%g mech=%v", r.Epsilon(), r.Mechanism())
	}
	if r.Utility().Name() != "common-neighbors" {
		t.Errorf("default utility %q", r.Utility().Name())
	}
	if r.Sensitivity() != 2 {
		t.Errorf("sensitivity = %g", r.Sensitivity())
	}
}

func TestNewRecommenderNilGraph(t *testing.T) {
	if _, err := NewRecommender(nil); !errors.Is(err, ErrNilGraph) {
		t.Errorf("want ErrNilGraph, got %v", err)
	}
}

func TestOptionValidation(t *testing.T) {
	g := demoGraph(t)
	if _, err := NewRecommender(g, WithEpsilon(0)); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewRecommender(g, WithEpsilon(-1)); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := NewRecommender(g, WithUtility(nil)); err == nil {
		t.Error("nil utility accepted")
	}
	if _, err := NewRecommender(g, WithMechanism(MechanismKind(42))); err == nil {
		t.Error("bogus mechanism accepted")
	}
}

func TestNonPrivateRecommendsBest(t *testing.T) {
	r, err := NewRecommender(demoGraph(t), NonPrivate(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Recommend(0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Node != 3 {
		t.Errorf("best suggestion for 0 is 3, got %d", rec.Node)
	}
	if rec.Utility != 2 || rec.MaxUtility != 2 {
		t.Errorf("utilities: %+v", rec)
	}
	acc, err := r.ExpectedAccuracy(0)
	if err != nil || math.Abs(acc-1) > 1e-12 {
		t.Errorf("non-private accuracy = %g, %v", acc, err)
	}
}

func TestRecommendDeterministicPerSeed(t *testing.T) {
	g := demoGraph(t)
	r1, err := NewRecommender(g, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRecommender(g, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	a, err := r1.Recommend(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.Recommend(0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed different recommendations: %+v vs %+v", a, b)
	}
}

func TestRecommendErrors(t *testing.T) {
	r, err := NewRecommender(demoGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Recommend(99); !errors.Is(err, ErrBadTarget) {
		t.Errorf("want ErrBadTarget, got %v", err)
	}
	// A node connected to everything reachable has no candidates.
	iso := NewGraph(2)
	if err := iso.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	r2, err := NewRecommender(iso)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Recommend(0); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("want ErrNoCandidates, got %v", err)
	}
}

func TestAllMechanismsRecommend(t *testing.T) {
	g := demoGraph(t)
	for _, kind := range []MechanismKind{MechanismExponential, MechanismLaplace, MechanismSmoothing, MechanismNone} {
		r, err := NewRecommender(g, WithMechanism(kind), WithSeed(9))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		rec, err := r.Recommend(0)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if rec.Node == 0 || rec.Node == 1 || rec.Node == 2 {
			t.Errorf("%v recommended target or existing neighbor: %+v", kind, rec)
		}
		acc, err := r.ExpectedAccuracy(0)
		if err != nil {
			t.Fatalf("%v accuracy: %v", kind, err)
		}
		if acc < 0 || acc > 1 {
			t.Errorf("%v accuracy %g out of range", kind, acc)
		}
	}
}

func TestAccuracyCeilingDominatesMechanism(t *testing.T) {
	g, err := GenerateSocialGraph(300, 1500, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRecommender(g, WithEpsilon(0.5), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for target := 0; target < g.NumNodes() && checked < 25; target++ {
		ceiling, err := r.AccuracyCeiling(target)
		if errors.Is(err, ErrNoCandidates) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		acc, err := r.ExpectedAccuracy(target)
		if err != nil {
			t.Fatal(err)
		}
		if acc > ceiling+1e-9 {
			t.Errorf("node %d: accuracy %g above ceiling %g", target, acc, ceiling)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no targets checked")
	}
}

func TestEpsilonFloors(t *testing.T) {
	g, err := GenerateSocialGraph(500, 2500, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRecommender(g)
	if err != nil {
		t.Fatal(err)
	}
	// Common neighbors: floor = ln n/(d+2); lower degree, higher floor.
	lo := r.EpsilonFloor(50)
	hi := r.EpsilonFloor(3)
	if !(hi > lo) || lo <= 0 {
		t.Errorf("floors: deg3 %g, deg50 %g", hi, lo)
	}
	if g := r.GenericEpsilonFloor(); !(g > 0) {
		t.Errorf("generic floor %g", g)
	}

	rw, err := NewRecommender(g, WithUtility(WeightedPaths(0.0005)))
	if err != nil {
		t.Fatal(err)
	}
	if f := rw.EpsilonFloor(3); !(f > 0) {
		t.Errorf("weighted-paths floor %g", f)
	}

	rd, err := NewRecommender(g, WithUtility(DegreeUtility()))
	if err != nil {
		t.Fatal(err)
	}
	if f := rd.EpsilonFloor(3); !math.IsNaN(f) {
		t.Errorf("degree utility has no specific theorem, want NaN, got %g", f)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	g := demoGraph(t)
	r, err := NewRecommender(g, NonPrivate())
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the graph after construction must not change results.
	before, err := r.Recommend(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 5); err != nil {
		t.Fatal(err)
	}
	after, err := r.Recommend(0)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("snapshot leaked mutation: %+v vs %+v", before, after)
	}
}

func TestRecommendWithRNG(t *testing.T) {
	r, err := NewRecommender(demoGraph(t), WithEpsilon(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := distribution.NewRNG(77)
	rec, err := r.RecommendWithRNG(0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Target != 0 {
		t.Errorf("target = %d", rec.Target)
	}
}

func TestMechanismKindString(t *testing.T) {
	cases := map[MechanismKind]string{
		MechanismExponential: "exponential",
		MechanismLaplace:     "laplace",
		MechanismSmoothing:   "smoothing",
		MechanismNone:        "none",
		MechanismKind(9):     "MechanismKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestGraphIORoundTrip(t *testing.T) {
	g, err := GenerateSocialGraph(50, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Error("round trip changed graph")
	}
}

func TestReadGraphParsesEdgeList(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("# c\n0 1\n1 2\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() || g.NumEdges() != 2 {
		t.Errorf("parsed graph wrong: %v", g)
	}
}

func TestGenerateFollowerGraph(t *testing.T) {
	g, err := GenerateFollowerGraph(200, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() || g.NumNodes() != 200 {
		t.Errorf("follower graph wrong: %v", g)
	}
	// Deterministic.
	g2, err := GenerateFollowerGraph(200, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(g2) {
		t.Error("not deterministic")
	}
}

// TestPrivacyAccuracyTradeoffEndToEnd exercises the paper's headline
// finding through the public API: accuracy ceilings collapse for low-degree
// targets at strict ε and recover at lenient ε.
func TestPrivacyAccuracyTradeoffEndToEnd(t *testing.T) {
	g, err := GenerateSocialGraph(1000, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := NewRecommender(g, WithEpsilon(0.1))
	if err != nil {
		t.Fatal(err)
	}
	lenient, err := NewRecommender(g, WithEpsilon(3))
	if err != nil {
		t.Fatal(err)
	}
	var strictSum, lenientSum float64
	n := 0
	for target := 0; target < g.NumNodes() && n < 50; target++ {
		s, err := strict.AccuracyCeiling(target)
		if errors.Is(err, ErrNoCandidates) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		l, err := lenient.AccuracyCeiling(target)
		if err != nil {
			t.Fatal(err)
		}
		if s > l+1e-9 {
			t.Errorf("node %d: strict ceiling %g above lenient %g", target, s, l)
		}
		strictSum += s
		lenientSum += l
		n++
	}
	if n == 0 {
		t.Fatal("no targets")
	}
	if strictSum/float64(n) > 0.5*lenientSum/float64(n)+0.2 {
		t.Logf("strict mean %g, lenient mean %g", strictSum/float64(n), lenientSum/float64(n))
	}
	if !(strictSum < lenientSum) {
		t.Errorf("strict privacy should cost accuracy: %g vs %g", strictSum, lenientSum)
	}
}
